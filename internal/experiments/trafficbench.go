package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"osdp/internal/dataset"
	"osdp/internal/ledger"
	"osdp/internal/server"
)

// This file is the closed-loop traffic harness behind `osdp-bench
// -traffic BENCH_traffic.json`: the multi-tenant latency/fairness
// regression surface ROADMAP item 5 calls for. N concurrent analysts
// drive a mixed query stream (histogram / count / quantile / workload,
// echoing the paper's §7 evaluation mix) against one in-process server
// whose admission layer is configured with a deliberately small
// execution-slot count, so the weighted-fair queue — not the scheduler
// — decides who runs. Each point reports per-analyst and aggregate
// p50/p99 latency, aggregate QPS, and the Jain fairness index over
// per-analyst completions; every future scaling PR (multi-replica
// ledger, mmap data plane) is judged against this artifact.

// TrafficMix is the §7-style query mix, in per-mille so the weights
// are exact integers: 40% histogram, 30% count, 15% quantile, 15%
// workload (64-range batches).
const (
	trafficHistogramPct = 40
	trafficCountPct     = 30
	trafficQuantilePct  = 15
	// remainder: workload
)

// trafficWorkloadRanges is the range-batch size of one workload query
// in the mix — big enough that a workload request is visibly heavier
// than a count, small enough that one cannot monopolize a slot.
const trafficWorkloadRanges = 64

// TrafficOptions parameterises MeasureTraffic.
type TrafficOptions struct {
	// Rows is the benchmark table size.
	Rows int
	// AnalystCounts are the closed-loop points to measure (e.g. 1, 8, 64).
	AnalystCounts []int
	// PerPoint is the measurement window per point.
	PerPoint time.Duration
	// MaxConcurrent is the admission layer's execution-slot count; <=0
	// defaults to 2, small on purpose so queueing (the object under
	// measurement) actually happens.
	MaxConcurrent int
	// OpenLoopAnalysts, when > 0, adds one open-loop point with that
	// many analysts: requests arrive on a fixed schedule
	// (OpenLoopRate per analyst per second) regardless of completions,
	// and latency is measured from the INTENDED arrival time, so
	// queueing delay is charged to the server, not hidden by
	// back-pressure (the coordinated-omission correction).
	OpenLoopAnalysts int
	// OpenLoopRate is the per-analyst arrival rate of the open-loop
	// point (default 20/s).
	OpenLoopRate float64
}

// AnalystTraffic is one analyst's slice of a traffic point.
type AnalystTraffic struct {
	Analyst   string `json:"analyst"`
	Requests  int    `json:"requests"`
	Errors    int    `json:"errors,omitempty"`
	Rejected  int    `json:"rejected,omitempty"`
	P50Micros int64  `json:"p50_us"`
	P99Micros int64  `json:"p99_us"`
}

// TrafficPoint is one measured configuration (analyst count x arrival
// mode).
type TrafficPoint struct {
	Analysts        int     `json:"analysts"`
	Mode            string  `json:"mode"` // "closed" or "open"
	DurationSeconds float64 `json:"duration_seconds"`
	Requests        int     `json:"requests"`
	QPS             float64 `json:"qps"`
	AggP50Micros    int64   `json:"p50_us"`
	AggP99Micros    int64   `json:"p99_us"`
	// Fairness is the Jain index over per-analyst completed-request
	// counts: (Σx)² / (n·Σx²), 1.0 = perfectly even service, 1/n =
	// one analyst got everything.
	Fairness   float64          `json:"fairness"`
	PerAnalyst []AnalystTraffic `json:"per_analyst"`
}

// TrafficResult is the machine-readable outcome written to
// BENCH_traffic.json.
type TrafficResult struct {
	Rows          int            `json:"rows"`
	MaxConcurrent int            `json:"max_concurrent"`
	Mix           string         `json:"mix"`
	Points        []TrafficPoint `json:"points"`
}

// JainIndex computes the Jain fairness index of xs (1.0 = perfectly
// fair). Empty or all-zero input yields 0.
func JainIndex(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// trafficServer is one in-process server with its minted analysts and
// open sessions.
type trafficServer struct {
	srv      *server.Server
	led      *ledger.Ledger
	analysts []string // analyst ids
	sessions []string // one session per analyst
}

func (ts *trafficServer) close() {
	ts.srv.Close()
	ts.led.Close()
}

// newTrafficServer builds a ledger-backed admission-enabled server over
// a fresh benchmark table and opens one session per analyst. Budgets
// are unlimited: the harness measures scheduling, not accounting.
func newTrafficServer(rows, analysts, maxConcurrent int) (*trafficServer, error) {
	led, err := ledger.Open(ledger.Config{}) // in-memory
	if err != nil {
		return nil, fmt.Errorf("traffic bench: %w", err)
	}
	srv := server.New(server.Config{
		Ledger:              led,
		AllowSeededSessions: true,
		Admission:           &server.AdmissionConfig{MaxConcurrent: maxConcurrent},
	})
	tb := DataplaneTable(rows, 64, 1)
	pol := dataset.NewPolicy("bench-minors", dataset.Cmp("Age", dataset.OpLt, dataset.Int(18)))
	if err := srv.RegisterTable("bench", tb, pol); err != nil {
		led.Close()
		return nil, fmt.Errorf("traffic bench: %w", err)
	}
	ts := &trafficServer{srv: srv, led: led}
	for i := 0; i < analysts; i++ {
		info, _, err := led.CreateAnalyst(fmt.Sprintf("analyst-%02d", i), 0)
		if err != nil {
			ts.close()
			return nil, fmt.Errorf("traffic bench: %w", err)
		}
		s := int64(i + 1)
		sess, err := srv.OpenSession(info.ID, server.OpenSessionRequest{Dataset: "bench", Seed: &s})
		if err != nil {
			ts.close()
			return nil, fmt.Errorf("traffic bench: %w", err)
		}
		ts.analysts = append(ts.analysts, info.ID)
		ts.sessions = append(ts.sessions, sess.ID)
	}
	return ts, nil
}

// trafficRequest draws the next request from the §7-style mix.
func trafficRequest(rng *rand.Rand) server.QueryRequest {
	switch p := rng.Intn(100); {
	case p < trafficHistogramPct:
		return server.QueryRequest{
			Kind: server.KindHistogram, Eps: 0.1,
			Dims: []server.DomainSpec{{Attr: "Group"}},
		}
	case p < trafficHistogramPct+trafficCountPct:
		return server.QueryRequest{Kind: server.KindCount, Eps: 0.1}
	case p < trafficHistogramPct+trafficCountPct+trafficQuantilePct:
		return server.QueryRequest{
			Kind: server.KindQuantile, Eps: 0.1,
			Attr: "Age", Q: float64(1+rng.Intn(9)) / 10,
		}
	default:
		ranges := make([]server.RangeSpec, trafficWorkloadRanges)
		for i := range ranges {
			lo := rng.Intn(32)
			ranges[i] = server.RangeSpec{Lo: lo, Hi: lo + rng.Intn(32)}
		}
		return server.QueryRequest{
			Kind: server.KindWorkload, Eps: 0.1,
			Dims:   []server.DomainSpec{{Attr: "Age", Lo: 0, Width: 2, Bins: 64}},
			Ranges: ranges,
		}
	}
}

// analystTally accumulates one analyst's outcomes.
type analystTally struct {
	latencies []time.Duration
	errors    int
	rejected  int
}

func (a *analystTally) record(d time.Duration, err error) {
	switch {
	case err == nil:
		a.latencies = append(a.latencies, d)
	case errors.Is(err, server.ErrRateLimited):
		a.rejected++
	default:
		a.errors++
	}
}

// summarize folds per-analyst tallies into a TrafficPoint.
func summarize(mode string, elapsed time.Duration, names []string, tallies []analystTally) TrafficPoint {
	pt := TrafficPoint{
		Analysts:        len(tallies),
		Mode:            mode,
		DurationSeconds: elapsed.Seconds(),
	}
	var all []time.Duration
	counts := make([]float64, len(tallies))
	for i := range tallies {
		ta := &tallies[i]
		counts[i] = float64(len(ta.latencies))
		pt.Requests += len(ta.latencies)
		all = append(all, ta.latencies...)
		pt.PerAnalyst = append(pt.PerAnalyst, AnalystTraffic{
			Analyst:   names[i],
			Requests:  len(ta.latencies),
			Errors:    ta.errors,
			Rejected:  ta.rejected,
			P50Micros: percentileMicros(ta.latencies, 0.50),
			P99Micros: percentileMicros(ta.latencies, 0.99),
		})
	}
	pt.QPS = float64(pt.Requests) / elapsed.Seconds()
	pt.AggP50Micros = percentileMicros(all, 0.50)
	pt.AggP99Micros = percentileMicros(all, 0.99)
	pt.Fairness = JainIndex(counts)
	return pt
}

// percentileMicros returns the q-quantile of ds in microseconds (0 on
// empty input). ds is sorted in place.
func percentileMicros(ds []time.Duration, q float64) int64 {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	idx := int(q * float64(len(ds)-1))
	return ds[idx].Microseconds()
}

// runClosedLoop drives one closed-loop point: each analyst issues its
// next request the moment the previous one completes, for the whole
// window. Completion rates under a saturated pipe are therefore the
// admission layer's service allocation — exactly what the Jain index
// scores.
func runClosedLoop(ts *trafficServer, window time.Duration) TrafficPoint {
	n := len(ts.analysts)
	tallies := make([]analystTally, n)
	start := time.Now()
	deadline := start.Add(window)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 7))
			for time.Now().Before(deadline) {
				req := trafficRequest(rng)
				t0 := time.Now()
				_, err := ts.srv.QueryContext(context.Background(), ts.analysts[i], ts.sessions[i], req)
				tallies[i].record(time.Since(t0), err)
			}
		}(i)
	}
	wg.Wait()
	return summarize("closed", time.Since(start), ts.analysts, tallies)
}

// runOpenLoop drives one open-loop point: requests arrive every
// 1/rate seconds per analyst whether or not earlier ones finished
// (bounded at 64 outstanding per analyst — beyond that, arrivals are
// dropped and counted as errors rather than queued in the generator).
// Latency is measured from the intended arrival instant.
func runOpenLoop(ts *trafficServer, window time.Duration, rate float64) TrafficPoint {
	n := len(ts.analysts)
	tallies := make([]analystTally, n)
	interval := time.Duration(float64(time.Second) / rate)
	start := time.Now()
	deadline := start.Add(window)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 7))
			var mu sync.Mutex
			outstanding := 0
			var reqWG sync.WaitGroup
			for k := 0; ; k++ {
				intended := start.Add(time.Duration(k) * interval)
				if intended.After(deadline) {
					break
				}
				time.Sleep(time.Until(intended))
				mu.Lock()
				if outstanding >= 64 {
					tallies[i].errors++
					mu.Unlock()
					continue
				}
				outstanding++
				mu.Unlock()
				req := trafficRequest(rng)
				reqWG.Add(1)
				go func(intended time.Time) {
					defer reqWG.Done()
					_, err := ts.srv.QueryContext(context.Background(), ts.analysts[i], ts.sessions[i], req)
					lat := time.Since(intended)
					mu.Lock()
					outstanding--
					tallies[i].record(lat, err)
					mu.Unlock()
				}(intended)
			}
			reqWG.Wait()
		}(i)
	}
	wg.Wait()
	return summarize("open", time.Since(start), ts.analysts, tallies)
}

// MeasureTraffic runs the closed-loop harness at every requested
// analyst count (plus an optional open-loop point) and returns the
// latency/QPS/fairness surface.
func MeasureTraffic(opt TrafficOptions) (TrafficResult, error) {
	if opt.Rows <= 0 {
		opt.Rows = 100_000
	}
	if len(opt.AnalystCounts) == 0 {
		opt.AnalystCounts = []int{1, 8, 64}
	}
	if opt.PerPoint <= 0 {
		opt.PerPoint = 2 * time.Second
	}
	if opt.MaxConcurrent <= 0 {
		opt.MaxConcurrent = 2
	}
	if opt.OpenLoopRate <= 0 {
		opt.OpenLoopRate = 20
	}
	res := TrafficResult{
		Rows:          opt.Rows,
		MaxConcurrent: opt.MaxConcurrent,
		Mix: fmt.Sprintf("histogram %d%% / count %d%% / quantile %d%% / workload(%d ranges) %d%%",
			trafficHistogramPct, trafficCountPct, trafficQuantilePct,
			trafficWorkloadRanges, 100-trafficHistogramPct-trafficCountPct-trafficQuantilePct),
	}
	for _, n := range opt.AnalystCounts {
		ts, err := newTrafficServer(opt.Rows, n, opt.MaxConcurrent)
		if err != nil {
			return TrafficResult{}, err
		}
		// The Jain index scores per-analyst completion COUNTS, but the
		// mix makes request cost heterogeneous — with only a few dozen
		// draws per analyst the index measures mix luck, not
		// scheduling. Stretch the window with the analyst count so
		// every point gets comparable per-analyst sample sizes.
		window := opt.PerPoint * time.Duration((n+7)/8)
		if window < opt.PerPoint {
			window = opt.PerPoint
		}
		pt := runClosedLoop(ts, window)
		ts.close()
		if pt.Requests == 0 {
			return TrafficResult{}, fmt.Errorf("traffic bench: closed loop at %d analysts completed no requests", n)
		}
		res.Points = append(res.Points, pt)
	}
	if opt.OpenLoopAnalysts > 0 {
		ts, err := newTrafficServer(opt.Rows, opt.OpenLoopAnalysts, opt.MaxConcurrent)
		if err != nil {
			return TrafficResult{}, err
		}
		pt := runOpenLoop(ts, opt.PerPoint, opt.OpenLoopRate)
		ts.close()
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// String renders the result as report-style lines, one per point.
func (r TrafficResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "traffic: %d rows, %d slots, mix %s", r.Rows, r.MaxConcurrent, r.Mix)
	for _, p := range r.Points {
		fmt.Fprintf(&b, "\n  %2d analysts (%s): %6.0f qps, p50 %6.2f ms, p99 %7.2f ms, fairness %.3f",
			p.Analysts, p.Mode, p.QPS, float64(p.AggP50Micros)/1e3, float64(p.AggP99Micros)/1e3, p.Fairness)
	}
	return b.String()
}
