package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"osdp/internal/dataset"
	"osdp/internal/histogram"
)

// This file is the data-plane benchmark substrate shared by the root
// BenchmarkRowVsColumnar and cmd/osdp-bench's BENCH_dataplane.json
// emission: one synthetic serving-shaped table, the canonical filtered
// group-by workload, and the row-at-a-time reference engine the columnar
// execution path replaced.

// DataplaneTable builds a rows-long table with a `groups`-ary string
// attribute ("Group"), an integer "Age" (0..99) for the WHERE condition,
// and a float "Score" payload. Deterministic in seed.
func DataplaneTable(rows, groups int, seed int64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	s := dataset.NewSchema(
		dataset.Field{Name: "Group", Kind: dataset.KindString},
		dataset.Field{Name: "Age", Kind: dataset.KindInt},
		dataset.Field{Name: "Score", Kind: dataset.KindFloat},
	)
	names := make([]string, groups)
	for i := range names {
		names[i] = fmt.Sprintf("group-%03d", i)
	}
	tb := dataset.NewTable(s)
	for i := 0; i < rows; i++ {
		tb.AppendValues(
			dataset.Str(names[rng.Intn(groups)]),
			dataset.Int(int64(rng.Intn(100))),
			dataset.Float(rng.Float64()*1000),
		)
	}
	return tb
}

// DataplaneWhere is the benchmark condition: 18 <= Age < 60 (~42% of
// rows), a conjunction so the row path pays two interface dispatches.
func DataplaneWhere() dataset.Predicate {
	return dataset.And(
		dataset.Cmp("Age", dataset.OpGe, dataset.Int(18)),
		dataset.Cmp("Age", dataset.OpLt, dataset.Int(60)),
	)
}

// RowReferenceGroupCount is the row-at-a-time baseline and correctness
// reference: evaluate the predicate record by record through the
// Predicate interface, group by rendering each value into a string-keyed
// map — the pre-columnar engine's algorithm. rows is the pre-built row
// slice (callers hoist t.Records() out of timed regions, mirroring the
// old engine's stored record slice). Note the baseline is not a perfect
// replica of the old engine: records now read through the columnar
// storage, reconstructing a Value per access where the old Table
// returned stored Values directly — the benchmark measures today's row
// path against today's columnar path on identical storage.
func RowReferenceGroupCount(t *dataset.Table, rows []dataset.Record, where dataset.Predicate, attr string) map[string]int {
	ci := t.Schema().ColumnIndex(attr)
	if ci < 0 {
		panic(fmt.Sprintf("experiments: unknown attribute %q", attr))
	}
	out := make(map[string]int)
	for _, r := range rows {
		if where != nil && !where.Eval(r) {
			continue
		}
		out[r.At(ci).AsString()]++
	}
	return out
}

// DataplaneResult is the machine-readable outcome written to
// BENCH_dataplane.json by cmd/osdp-bench.
type DataplaneResult struct {
	Rows            int     `json:"rows"`
	Groups          int     `json:"groups"`
	Selectivity     float64 `json:"where_selectivity"`
	RowNsPerOp      float64 `json:"row_ns_per_op"`
	ColumnarNsPerOp float64 `json:"columnar_ns_per_op"`
	Speedup         float64 `json:"speedup"`
}

// MeasureDataplane times the filtered group-by count through both
// engines on a fresh table, running each for at least minDuration, and
// sanity-checks that they agree before reporting.
func MeasureDataplane(rows, groups int, minDuration time.Duration) (DataplaneResult, error) {
	tb := DataplaneTable(rows, groups, 1)
	where := DataplaneWhere()
	q := histogram.NewQuery(where, histogram.DomainFromTable(tb, "Group"))

	recs := tb.Records() // hoisted: the old engine kept this slice stored
	ref := RowReferenceGroupCount(tb, recs, where, "Group")
	h := q.Eval(tb) // also warms the cached bin vector
	matched := 0
	for i := 0; i < h.Bins(); i++ {
		if int(h.Count(i)) != ref[h.Label(i)] {
			return DataplaneResult{}, fmt.Errorf("engines disagree on group %q: %v vs %d",
				h.Label(i), h.Count(i), ref[h.Label(i)])
		}
		matched += int(h.Count(i))
	}

	rowNs := timePerOp(minDuration, func() {
		RowReferenceGroupCount(tb, recs, where, "Group")
	})
	colNs := timePerOp(minDuration, func() {
		q.Eval(tb)
	})
	return DataplaneResult{
		Rows:            rows,
		Groups:          groups,
		Selectivity:     float64(matched) / float64(rows),
		RowNsPerOp:      rowNs,
		ColumnarNsPerOp: colNs,
		Speedup:         rowNs / colNs,
	}, nil
}

// timePerOp runs f repeatedly for at least d and returns ns per call.
func timePerOp(d time.Duration, f func()) float64 {
	f() // warm-up
	var ops int
	start := time.Now()
	for time.Since(start) < d {
		f()
		ops++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(ops)
}

// String renders the result as a report-style table row.
func (r DataplaneResult) String() string {
	return fmt.Sprintf(
		"dataplane: %d rows, %d groups, selectivity %.2f | row %.2f ms/op, columnar %.3f ms/op, speedup %.1fx",
		r.Rows, r.Groups, r.Selectivity, r.RowNsPerOp/1e6, r.ColumnarNsPerOp/1e6, r.Speedup)
}
