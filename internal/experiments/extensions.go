package experiments

import (
	"fmt"
	"math/rand"

	"osdp/internal/agrid"
	"osdp/internal/ahp"
	"osdp/internal/core"
	"osdp/internal/dataset"
	"osdp/internal/dawa"
	"osdp/internal/mechanism"
	"osdp/internal/metrics"
	"osdp/internal/noise"
	"osdp/internal/policylearn"
	"osdp/internal/privbayes"
	"osdp/internal/tippers"
)

// This file exercises the extensions beyond the paper's evaluation: the
// recipe's generality across base algorithms (§5.2 leaves extending
// algorithms other than DAWA as future work), the constraint-closure
// policies of §7, and learned policies of §7.

// RecipeGeneralityReport compares DAWAz against AHPz — the §5.2 recipe
// instantiated with a second two-phase DP algorithm — on every benchmark
// dataset (Close policy, ρx = 0.5). Both beating their base algorithm on
// sparse data is the evidence that the recipe, not DAWA specifically, is
// doing the work.
func RecipeGeneralityReport(cfg Config, eps float64) *Report {
	r := &Report{
		Title:   fmt.Sprintf("Extension: recipe generality, DAWAz vs AHPz (ε=%g, Close, ρx=0.5)", eps),
		Headers: []string{"dataset", "DAWA", "DAWAz", "AHP", "AHPz"},
	}
	sub := cfg
	sub.NSRatios = []float64{0.5}
	src := noise.NewSource(cfg.Seed + 30)
	dawaAlg := dawa.New()
	ahpAlg := ahp.New()
	for _, in := range dpbenchInputs(sub) {
		if in.policy != "Close" {
			continue
		}
		var dw, dwz, ah, ahz float64
		for t := 0; t < cfg.Trials; t++ {
			est, _ := dawaAlg.Estimate(in.x, eps, src)
			dw += metrics.MRE(in.x, est, 1)
			dwz += metrics.MRE(in.x, dawa.DAWAz(in.x, in.xns, eps, DAWAzRho, src), 1)
			est2, _ := ahpAlg.Estimate(in.x, eps, src)
			ah += metrics.MRE(in.x, est2, 1)
			ahz += metrics.MRE(in.x, ahp.AHPz(in.x, in.xns, eps, DAWAzRho, src), 1)
		}
		n := float64(cfg.Trials)
		r.AddRow(in.dataset, dw/n, dwz/n, ah/n, ahz/n)
	}
	r.Notes = append(r.Notes, "expected: each z-variant improves its base algorithm on the sparse datasets")
	return r
}

// ConstraintClosureReport quantifies the §7 constraint extension on the
// TIPPERS corpus: how many access points each policy's closure absorbs
// under the grid topology, and the utility cost (loss of non-sensitive
// share) of eliminating reachability-based inference.
func ConstraintClosureReport(cfg Config) *Report {
	r := &Report{
		Title:   "Extension: constraint-aware policy closure (grid topology)",
		Headers: []string{"policy", "sensitive APs", "leaking APs", "closed sensitive APs", "ns share", "closed ns share"},
	}
	corpus := tippers.Generate(cfg.Tippers)
	topo := tippers.GridTopology()
	for _, share := range cfg.PolicyShares {
		p := corpus.PolicyForShare(share)
		leaking := topo.LeakingAPs(p)
		closed := topo.ClosePolicy(p)
		r.AddRow(p.Name,
			len(p.SensitiveAPs), len(leaking), len(closed.SensitiveAPs),
			corpus.NonSensitiveShare(p), corpus.NonSensitiveShare(closed))
	}
	r.Notes = append(r.Notes,
		"closure removes the §7 inference channel: presence at a released AP never implies crossing a sensitive AP")
	return r
}

// AGrid2DReport evaluates the adaptive-grid family on the TIPPERS AP×hour
// histogram, the natively 2-D workload: AGrid (DP) against AGridz (OSDP
// via the §5.2 recipe) and the 1-D algorithms from Figure 4. §5.2 names
// AGrid as a recipe-extendable algorithm for 2-D histograms; this report
// is that extension.
func AGrid2DReport(cfg Config, eps float64) *Report {
	r := &Report{
		Title:   fmt.Sprintf("Extension: adaptive grids on the TIPPERS 2-D histogram (ε=%g)", eps),
		Headers: []string{"policy", "ns share", "AGrid", "AGridz", "DAWAz", "OsdpLaplaceL1"},
	}
	corpus := tippers.Generate(cfg.Tippers)
	src := noise.NewSource(cfg.Seed + 60)
	rows, cols := tippers.NumAPs, tippers.HoursPerDay
	ag := agrid.New()
	for _, share := range cfg.PolicyShares {
		policy := corpus.PolicyForShare(share)
		x, xns := tippers.Hist2DSplit(corpus.Trajectories, policy)
		var agErr, agzErr, dawazErr, l1Err float64
		for t := 0; t < cfg.Trials; t++ {
			est, _ := ag.Estimate(x, rows, cols, eps, src)
			agErr += metrics.MRE(x, est, 1)
			agzErr += metrics.MRE(x, agrid.AGridz(x, xns, rows, cols, eps, DAWAzRho, src), 1)
			dawazErr += metrics.MRE(x, dawa.DAWAz(x, xns, eps, DAWAzRho, src), 1)
			l1Err += metrics.MRE(x, core.OsdpLaplaceL1(xns, eps, src), 1)
		}
		n := float64(cfg.Trials)
		r.AddRow(policy.Name, corpus.NonSensitiveShare(policy),
			agErr/n, agzErr/n, dawazErr/n, l1Err/n)
	}
	r.Notes = append(r.Notes,
		"expected: AGridz improves AGrid wherever non-sensitive records exist, mirroring DAWAz-vs-DAWA")
	return r
}

// PrivBayesReport evaluates the fourth §5.2-named algorithm, PrivBayes, on
// a correlated multi-attribute contingency table: PrivBayes vs the Laplace
// mechanism on the full joint, and PrivBayesz (the recipe upgrade) under a
// value-correlated policy.
func PrivBayesReport(cfg Config, epsilons []float64) *Report {
	r := &Report{
		Title:   "Extension: PrivBayes on a 4⁶-cell contingency table (MRE)",
		Headers: []string{"epsilon", "Laplace", "PrivBayes", "PrivBayesz"},
	}
	const d = 6
	vals := []string{"a", "b", "c", "d"}
	names := []string{"A0", "A1", "A2", "A3", "A4", "A5"}
	attrs := make([]privbayes.Attribute, d)
	fields := make([]dataset.Field, d)
	for i := 0; i < d; i++ {
		attrs[i] = privbayes.Attribute{Name: names[i], Values: vals}
		fields[i] = dataset.Field{Name: names[i], Kind: dataset.KindString}
	}
	enc := privbayes.NewEncoder(attrs)
	schema := dataset.NewSchema(fields...)
	// A sticky Markov chain concentrates mass on few heavy cells and
	// leaves most of the 4096-cell joint exactly zero — the sparse,
	// heavy-celled regime where both PrivBayes (few informative marginals)
	// and the zero-detection recipe (reliable zero set) earn their keep.
	rng := rand.New(rand.NewSource(cfg.Seed + 70))
	tb := dataset.NewTable(schema)
	for i := 0; i < 20000; i++ {
		row := make([]dataset.Value, d)
		cur := rng.Intn(len(vals))
		for j := 0; j < d; j++ {
			if j > 0 && rng.Float64() >= 0.9 {
				cur = rng.Intn(len(vals))
			}
			row[j] = dataset.Str(vals[cur])
		}
		tb.AppendValues(row...)
	}
	x, err := enc.Contingency(tb)
	if err != nil {
		panic(err)
	}
	// Opt-out-style policy uncorrelated with record values (a Close
	// policy): a deterministic hash of the record marks ~20% sensitive.
	// (A value-correlated policy like "A0 = a is sensitive" empties whole
	// slices of the contingency table in xns, making the zero detector
	// over-report — the Far-policy failure mode Figures 7–8 quantify.)
	policy := dataset.NewPolicy("optout20", dataset.FuncPredicate("hash(r)%5=0", func(r dataset.Record) bool {
		h := 0
		for _, c := range r.Key() {
			h = h*31 + int(c)
		}
		if h < 0 {
			h = -h
		}
		return h%5 == 0
	}))
	src := noise.NewSource(cfg.Seed + 71)
	for _, eps := range epsilons {
		var lap, pb, pbz float64
		for t := 0; t < cfg.Trials; t++ {
			lap += metrics.MRE(x, mechanism.LaplaceHistogram(x, eps, src), 1)
			model, err := privbayes.New().Fit(enc, tb, eps, src)
			if err != nil {
				panic(err)
			}
			pb += metrics.MRE(x, model.Reconstruct(), 1)
			// The joint's occupied cells are lighter than DPBench bins, so
			// zero detection needs a larger budget share than the 1-D
			// experiments' ρ=0.1 to keep its false-zero rate down.
			z, err := privbayes.PrivBayesz(privbayes.New(), enc, tb, policy, eps, 0.3, src)
			if err != nil {
				panic(err)
			}
			pbz += metrics.MRE(x, z, 1)
		}
		n := float64(cfg.Trials)
		r.AddRow(eps, lap/n, pb/n, pbz/n)
	}
	r.Notes = append(r.Notes,
		"expected: PrivBayes beats full-joint Laplace at small ε; PrivBayesz adds the OSDP zero-set gain on the sparse joint")
	return r
}

// PolicyLearningReport exercises the §7 policy-learning direction: fit a
// sensitivity classifier from labelled samples of an opt-in-style ground
// truth and report its agreement, false-non-sensitive rate (the privacy-
// relevant error), and false-sensitive rate (the utility cost).
func PolicyLearningReport(cfg Config, sampleSizes []int) *Report {
	r := &Report{
		Title:   "Extension: learned policy functions (LR over record attributes)",
		Headers: []string{"training examples", "agreement", "FNR (privacy)", "FPR (utility)", "threshold"},
	}
	s := dataset.NewSchema(
		dataset.Field{Name: "Age", Kind: dataset.KindInt},
		dataset.Field{Name: "OptIn", Kind: dataset.KindBool},
		dataset.Field{Name: "Income", Kind: dataset.KindFloat},
	)
	truth := func(r dataset.Record) bool {
		return r.Get("Age").AsInt() <= 17 || !r.Get("OptIn").AsBool()
	}
	gen := func(n int, seed int64) []policylearn.Example {
		rng := rand.New(rand.NewSource(seed))
		out := make([]policylearn.Example, n)
		for i := range out {
			rec := dataset.NewRecord(s,
				dataset.Int(int64(rng.Intn(85))),
				dataset.Bool(rng.Float64() < 0.7),
				dataset.Float(rng.Float64()*120000),
			)
			out[i] = policylearn.Example{Record: rec, Sensitive: truth(rec)}
		}
		return out
	}
	test := gen(3000, cfg.Seed+41)
	for _, n := range sampleSizes {
		lp, err := policylearn.Learn(gen(n, cfg.Seed+40), policylearn.DefaultConfig())
		if err != nil {
			r.AddRow(n, "-", "-", "-", "-")
			continue
		}
		var agree, fn, fp, nSens, nNon float64
		for _, ex := range test {
			got := lp.Sensitive(ex.Record)
			if got == ex.Sensitive {
				agree++
			}
			if ex.Sensitive {
				nSens++
				if !got {
					fn++
				}
			} else {
				nNon++
				if got {
					fp++
				}
			}
		}
		r.AddRow(n, agree/float64(len(test)), fn/nSens, fp/nNon, lp.Threshold())
	}
	r.Notes = append(r.Notes,
		"the threshold is calibrated to cap FNR — misclassifying a sensitive record voids its protection, so errors are pushed to the FPR side")
	return r
}
