package experiments

import (
	"fmt"
	"math/rand"

	"osdp/internal/histogram"
	"osdp/internal/mechanism"
	"osdp/internal/metrics"
	"osdp/internal/noise"
	"osdp/internal/tippers"
)

// FigureNGrams regenerates Figures 2 (n=4) and 3 (n=5): the mean relative
// error of releasing n-gram distinct-user histograms under All NS, OsdpRR,
// LM T1 (Laplace with truncation k=1), and LM T* (Laplace with the
// error-optimal, non-private truncation choice), for the given ε across
// all policies. The n-gram domain has 64ⁿ bins, making DP sensitivity
// management the dominant cost — exactly the regime where releasing true
// samples under OSDP wins.
func FigureNGrams(cfg Config, n int, eps float64) *Report {
	r := &Report{
		Title:   fmt.Sprintf("Figure %d (ε=%g): MRE of %d-gram release", n-2, eps, n),
		Headers: []string{"policy", "ns share", "All NS", "OsdpRR", "LM T1", "LM T*", "best k"},
	}
	corpus := tippers.Generate(cfg.Tippers)
	rng := rand.New(rand.NewSource(cfg.Seed))
	src := noise.NewSource(cfg.Seed + 2)

	trueCounts := tippers.NGramCounts(corpus.Trajectories, n)
	domain := tippers.NGramDomainSize(n)
	userGrams := tippers.UserGramLists(corpus.Trajectories, n)

	// DP baselines are policy-independent; compute once.
	var lmT1 float64
	for t := 0; t < cfg.Trials; t++ {
		est := mechanism.NGramLaplace(userGrams, 1, eps, src)
		lmT1 += metrics.SparseMRE(trueCounts, est, domain, 1)
	}
	lmT1 /= float64(cfg.Trials)
	bestK, lmTStar := mechanism.OptimalTruncation(userGrams, trueCounts, domain, eps, 4, cfg.Trials, src)

	for _, share := range cfg.PolicyShares {
		policy := corpus.PolicyForShare(share)
		nsShare := corpus.NonSensitiveShare(policy)

		allNS := metrics.SparseMRE(trueCounts,
			tippers.NGramCounts(corpus.ReleaseAllNS(policy), n), domain, 1)

		var rr float64
		for t := 0; t < cfg.Trials; t++ {
			released := corpus.ReleaseRR(policy, eps, rng)
			rr += metrics.SparseMRE(trueCounts, scaledNGramCounts(released, n, eps), domain, 1)
		}
		rr /= float64(cfg.Trials)

		r.AddRow(policy.Name, nsShare, allNS, rr, lmT1, lmTStar, bestK)
	}
	r.Notes = append(r.Notes,
		"paper: OsdpRR within a small factor of All NS; LM an order of magnitude worse at small ε")
	return r
}

// scaledNGramCounts counts n-grams over an OsdpRR release and applies the
// Horvitz–Thompson inverse-probability correction 1/(1−e^(−ε)) so the
// estimate is unbiased for the non-sensitive data — standard post-
// processing of a known-rate sample.
func scaledNGramCounts(released []*tippers.Trajectory, n int, eps float64) histogram.SparseCounts {
	counts := tippers.NGramCounts(released, n)
	scale := 1 / noise.KeepProbability(eps)
	out := make(histogram.SparseCounts, len(counts))
	for k, v := range counts {
		out[k] = v * scale
	}
	return out
}
