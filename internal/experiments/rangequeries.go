package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"osdp/internal/hier"
	"osdp/internal/metrics"
	"osdp/internal/noise"
)

// RangeWorkloadReport evaluates the §6.3.3 algorithms on random range-query
// workloads instead of point queries — DAWA's original target workload.
// Within-bucket noise cancels over ranges that cover whole buckets, so
// this is the evaluation most favourable to the DP baselines; the OSDP
// algorithms retaining their edge here shows the advantage is not an
// artifact of point-query scoring.
func RangeWorkloadReport(cfg Config, eps float64, nQueries int) *Report {
	r := &Report{
		Title:   fmt.Sprintf("Range-query workload MRE (ε=%g, Close, ρx=0.5, %d random ranges)", eps, nQueries),
		Headers: []string{"dataset", "Laplace", "Hier", "DAWA", "OsdpLaplaceL1", "DAWAz", "Hierz"},
	}
	sub := cfg
	sub.NSRatios = []float64{0.5}
	src := noise.NewSource(cfg.Seed + 50)
	rng := rand.New(rand.NewSource(cfg.Seed + 51))
	for _, in := range dpbenchInputs(sub) {
		if in.policy != "Close" {
			continue
		}
		w := metrics.RandomRangeWorkload(nQueries, in.x.Bins(), rng)
		sums := map[string]float64{}
		algs := []string{"Laplace", "DAWA", "OsdpLaplaceL1", "DAWAz", "Hierz"}
		for t := 0; t < cfg.Trials; t++ {
			for _, alg := range algs {
				est := runBenchAlg(alg, in, eps, src)
				sums[alg] += metrics.WorkloadMRE(in.x, est, w, 1)
			}
			// Hier answers ranges from the consistent tree's canonical
			// decomposition, not from its leaves — that is the entire
			// point of the hierarchy, so score it that way.
			tree := hier.Build(in.x, eps, src)
			var treeErr float64
			for _, q := range w {
				truth := q.Answer(in.x)
				treeErr += math.Abs(truth-tree.RangeSum(q.Lo, q.Hi)) / math.Max(truth, 1)
			}
			sums["Hier"] += treeErr / float64(len(w))
		}
		n := float64(cfg.Trials)
		r.AddRow(in.dataset, sums["Laplace"]/n, sums["Hier"]/n, sums["DAWA"]/n,
			sums["OsdpLaplaceL1"]/n, sums["DAWAz"]/n, sums["Hierz"]/n)
	}
	r.Notes = append(r.Notes,
		"range sums let within-bucket noise cancel, so DAWA closes much of its point-query gap here")
	return r
}
