package experiments

import (
	"runtime"
	"testing"
	"time"
)

// TestTracingOverheadBar enforces the observability acceptance bar:
// request tracing plus the durable audit trail, on top of the full
// metrics plane, must cost under 2% of query latency against a server
// with telemetry disabled. Best-of-N windows cancel most scheduler
// noise, but a loaded 1-CPU container still jitters more than the bar
// itself, so — like the other perf bars — it is only enforced on the
// multi-core CI runner. The committed BENCH_metrics.json artifact is
// regenerated at full scale (200K rows, 1s windows) by the bench job.
func TestTracingOverheadBar(t *testing.T) {
	if testing.Short() {
		t.Skip("tracing overhead bar skipped in -short")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("tracing overhead bar needs >=4 CPUs, have %d", runtime.NumCPU())
	}
	res, err := MeasureTelemetryOverhead(200_000, 64, 250*time.Millisecond, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", res.String())
	if res.TracedOverheadPct >= 2.0 {
		t.Fatalf("tracing+audit overhead %.2f%% (base %.1f µs/op, traced %.1f µs/op), bar is <2%%",
			res.TracedOverheadPct, res.BaseNsPerOp/1e3, res.TracedNsPerOp/1e3)
	}
}

// TestTelemetryOverheadSmoke runs the bench at tiny scale so the
// three-engine plumbing (probe, traced middleware replica, audit
// append) is exercised by `go test` everywhere, without enforcing any
// timing bar.
func TestTelemetryOverheadSmoke(t *testing.T) {
	res, err := MeasureTelemetryOverhead(2_000, 8, 5*time.Millisecond, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.TracedNsPerOp <= 0 || res.BaseNsPerOp <= 0 {
		t.Fatalf("non-positive ns/op: %+v", res)
	}
	if res.Series == 0 {
		t.Fatalf("instrumented engine rendered no series")
	}
}
