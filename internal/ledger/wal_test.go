package ledger

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"osdp/internal/core"
)

// reopen closes l and opens a fresh ledger over the same directory.
func reopen(t *testing.T, l *Ledger, cfg Config) *Ledger {
	t.Helper()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l2.Close() })
	return l2
}

func TestReplayRestoresSpend(t *testing.T) {
	cfg := Config{Dir: t.TempDir(), DefaultBudget: 2}
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, key, err := l.CreateAnalyst("alice", 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Charge(a.ID, "people", g(0.75)); err != nil {
		t.Fatal(err)
	}
	if err := l.Charge(a.ID, "people", g(0.5)); err != nil {
		t.Fatal(err)
	}
	if err := l.Refund(a.ID, "people", g(0.5)); err != nil {
		t.Fatal(err)
	}
	if err := l.SetBudget(a.ID, "census", 3); err != nil {
		t.Fatal(err)
	}

	l = reopen(t, l, cfg)

	// Identity survives: the same key authenticates, with the same caps.
	got, err := l.Authenticate(key)
	if err != nil || got.ID != a.ID || got.SessionCap != 5 {
		t.Fatalf("replayed authenticate: %+v, %v", got, err)
	}
	// Spend survives: 0.75 charged, the 0.5 was refunded.
	acct, err := l.Account(a.ID, "people")
	if err != nil || math.Abs(acct.Spent-0.75) > 1e-12 {
		t.Fatalf("replayed account %+v, %v", acct, err)
	}
	if acct.Charges != 2 {
		t.Fatalf("replayed charge count %d, want 2", acct.Charges)
	}
	// Explicit grants survive.
	acct, err = l.Account(a.ID, "census")
	if err != nil || acct.Budget != 3 {
		t.Fatalf("replayed grant %+v, %v", acct, err)
	}
	// The replayed budget still binds: 0.75 spent of 2 leaves 1.25.
	if err := l.Charge(a.ID, "people", g(1.5)); !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("over-budget after replay: got %v, want ErrBudgetExceeded", err)
	}
	if err := l.Charge(a.ID, "people", g(1.0)); err != nil {
		t.Fatalf("in-budget charge after replay: %v", err)
	}
}

func TestSnapshotCompactionEquivalence(t *testing.T) {
	cfg := Config{Dir: t.TempDir(), DefaultBudget: 100, SnapshotEvery: 10}
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := l.CreateAnalyst("alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	// 35 charges with SnapshotEvery=10 forces at least 3 compactions.
	want := 0.0
	for i := 0; i < 35; i++ {
		eps := 0.01 * float64(i%5+1)
		if err := l.Charge(a.ID, "d", g(eps)); err != nil {
			t.Fatal(err)
		}
		want += eps
	}
	if _, err := os.Stat(filepath.Join(cfg.Dir, snapshotFile)); err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}
	// The WAL must have been truncated at the last compaction — it holds
	// at most SnapshotEvery lines, not all 35+.
	if n := countWALLines(t, cfg.Dir); n > 10 {
		t.Fatalf("WAL holds %d lines after compaction, want <= 10", n)
	}

	l = reopen(t, l, cfg)
	acct, err := l.Account(a.ID, "d")
	if err != nil || math.Abs(acct.Spent-want) > 1e-9 {
		t.Fatalf("snapshot+WAL replay spent %g, want %g (%v)", acct.Spent, want, err)
	}
	if acct.Charges != 35 {
		t.Fatalf("replayed charge count %d, want 35", acct.Charges)
	}
}

func countWALLines(t *testing.T, dir string) int {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) != "" {
			n++
		}
	}
	return n
}

// TestSnapshotBoundaryKeepsTriggeringRecord pins the writer ordering
// rule: with SnapshotEvery=1 EVERY append lands on a compaction
// boundary, so any record applied to memory only after its append would
// be built out of the snapshot yet covered by its seq — and silently
// truncated away. Analyst creation, disable (key revocation!), budget
// grants, charges, and refunds must all survive.
func TestSnapshotBoundaryKeepsTriggeringRecord(t *testing.T) {
	cfg := Config{Dir: t.TempDir(), DefaultBudget: 5, SnapshotEvery: 1}
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, keyA, err := l.CreateAnalyst("alice", 3)
	if err != nil {
		t.Fatal(err)
	}
	b, keyB, err := l.CreateAnalyst("bob", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Charge(a.ID, "d", g(0.5)); err != nil {
		t.Fatal(err)
	}
	if err := l.SetBudget(a.ID, "other", 2); err != nil {
		t.Fatal(err)
	}
	if err := l.SetDisabled(b.ID, true); err != nil {
		t.Fatal(err)
	}

	l = reopen(t, l, cfg)

	if got, err := l.Authenticate(keyA); err != nil || got.SessionCap != 3 {
		t.Fatalf("alice lost at snapshot boundary: %+v, %v", got, err)
	}
	// Bob's REVOCATION must survive — a dropped disable record re-arms
	// a revoked key.
	if _, err := l.Authenticate(keyB); !errors.Is(err, ErrDisabled) {
		t.Fatalf("bob's revocation lost at snapshot boundary: %v", err)
	}
	acct, err := l.Account(a.ID, "d")
	if err != nil || math.Abs(acct.Spent-0.5) > 1e-12 {
		t.Fatalf("charge lost at snapshot boundary: %+v, %v", acct, err)
	}
	acct, err = l.Account(a.ID, "other")
	if err != nil || acct.Budget != 2 {
		t.Fatalf("grant lost at snapshot boundary: %+v, %v", acct, err)
	}
}

// TestDefaultBudgetRebindsOnReopen: only explicit grants replay their
// snapshotted budget; accounts on the config default re-resolve against
// the CURRENT default, so tightening -default-analyst-eps reaches them.
func TestDefaultBudgetRebindsOnReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, DefaultBudget: 1.0, SnapshotEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := l.CreateAnalyst("alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Charge(a.ID, "defaulted", g(0.2)); err != nil {
		t.Fatal(err)
	}
	if err := l.SetBudget(a.ID, "granted", 3); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a TIGHTER default.
	l, err = Open(Config{Dir: dir, DefaultBudget: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	acct, err := l.Account(a.ID, "defaulted")
	if err != nil || acct.Budget != 0.25 {
		t.Fatalf("default account kept stale budget: %+v, %v", acct, err)
	}
	// Spend already exceeds the tightened default: frozen, not erased.
	if math.Abs(acct.Spent-0.2) > 1e-12 || acct.Remaining > 0.05+1e-12 {
		t.Fatalf("tightened default account state: %+v", acct)
	}
	if err := l.Charge(a.ID, "defaulted", g(0.1)); !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("tightened default not enforced: %v", err)
	}
	// The explicit grant is untouched by the default change.
	acct, err = l.Account(a.ID, "granted")
	if err != nil || acct.Budget != 3 {
		t.Fatalf("explicit grant lost its budget: %+v, %v", acct, err)
	}
}

// TestTornTailTolerated truncates the WAL at every byte offset of its
// final record and proves replay (a) always succeeds and (b) never
// reports more spend than the acknowledged total — the spent ε is
// monotone in how much of the log survived.
func TestTornTailTolerated(t *testing.T) {
	cfg := Config{Dir: t.TempDir(), DefaultBudget: 10}
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := l.CreateAnalyst("alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Charge(a.ID, "d", g(0.5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(cfg.Dir, walFile))
	if err != nil {
		t.Fatal(err)
	}

	// Truncation points: everywhere inside the last line, plus exactly at
	// the end.
	lastLineStart := strings.LastIndex(strings.TrimRight(string(full), "\n"), "\n") + 1
	prev := -1.0
	for cut := lastLineStart; cut <= len(full); cut++ {
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, walFile), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cfg2 := Config{Dir: dir2, DefaultBudget: 10}
		l2, err := Open(cfg2)
		if err != nil {
			t.Fatalf("cut at %d: open failed: %v", cut, err)
		}
		spent := l2.TotalSpent()
		l2.Close()
		if spent > 2.5+1e-12 {
			t.Fatalf("cut at %d: spent %g exceeds acknowledged 2.5", cut, spent)
		}
		if spent < prev-1e-12 {
			t.Fatalf("cut at %d: spent %g < %g at shorter prefix — not monotone", cut, spent, prev)
		}
		prev = spent
	}
	if math.Abs(prev-2.5) > 1e-12 {
		t.Fatalf("full log replays %g, want 2.5", prev)
	}
}

// TestTornTailTruncatedBeforeAppend is the double-crash regression: a
// torn fragment must be cut off at Open, BEFORE new records are
// appended. Without the truncation the next acknowledged record merges
// into the fragment's line, and a second restart drops it as a "torn
// tail" — losing fsync'd, acknowledged spend.
func TestTornTailTruncatedBeforeAppend(t *testing.T) {
	cfg := Config{Dir: t.TempDir(), DefaultBudget: 10}
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := l.CreateAnalyst("alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Charge(a.ID, "d", g(0.5)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash artifact: half a record, no trailing newline.
	path := filepath.Join(cfg.Dir, walFile)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":99,"kind":"char`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart 1: tolerates the torn tail and acknowledges a NEW charge.
	l, err = Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.TotalSpent(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("restart 1 replayed %g, want 0.5", got)
	}
	if err := l.Charge(a.ID, "d", g(0.5)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart 2: the acknowledged charge must have survived on its own
	// line — 1.0 total, not 0.5 with the new record swallowed by the
	// fragment.
	l, err = Open(cfg)
	if err != nil {
		t.Fatalf("restart 2: %v", err)
	}
	defer l.Close()
	if got := l.TotalSpent(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("restart 2 replayed %g, want 1.0 — acknowledged spend was lost", got)
	}
}

// TestMidFileCorruptionRefused: a mangled line that is NOT the tail is
// corruption, not a crash artifact — Open must fail closed rather than
// serve a ledger that may under-count.
func TestMidFileCorruptionRefused(t *testing.T) {
	cfg := Config{Dir: t.TempDir(), DefaultBudget: 10}
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := l.CreateAnalyst("alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := l.Charge(a.ID, "d", g(0.5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(cfg.Dir, walFile)
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the SECOND line mid-record — a structurally invalid JSON
	// line that is not the tail. (Flipping a byte inside a string value
	// would NOT do: encoding/json silently repairs invalid UTF-8.)
	lines := strings.SplitAfter(string(body), "\n")
	if len(lines) < 4 {
		t.Fatalf("expected >= 4 WAL lines, got %d", len(lines))
	}
	lines[1] = lines[1][:len(lines[1])/2] + "\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(cfg); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("open over mid-file corruption: got %v, want corruption error", err)
	}
}

// TestLedgerCrashRecovery is the CI crash smoke: a helper process (this
// test binary re-exec'd) charges in a tight loop until it is SIGKILLed
// mid-write; the parent then replays the directory and asserts the
// ledger opens cleanly and its spent ε is monotone across crash rounds.
func TestLedgerCrashRecovery(t *testing.T) {
	if dir := os.Getenv("OSDP_LEDGER_CRASH_DIR"); dir != "" {
		crashHelper(dir)
		return
	}
	if testing.Short() {
		t.Skip("subprocess crash smoke skipped in -short")
	}
	dir := t.TempDir()
	prev := 0.0
	for round := 0; round < 3; round++ {
		cmd := exec.Command(os.Args[0], "-test.run", "^TestLedgerCrashRecovery$")
		cmd.Env = append(os.Environ(), "OSDP_LEDGER_CRASH_DIR="+dir)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// The helper charges from 8 concurrent goroutines (so the SIGKILL
		// lands mid-batch with writers in flight) and streams "acked N"
		// progress lines; the last one read before the kill is a floor on
		// what replay must recover — no acknowledged charge may be lost.
		ready := make(chan error, 1)
		ackCh := make(chan int, 4096)
		scanDone := make(chan struct{})
		go func() {
			defer close(scanDone)
			sc := bufio.NewScanner(stdout)
			first := true
			for sc.Scan() {
				line := sc.Text()
				if first {
					first = false
					if line != "ready" {
						ready <- fmt.Errorf("unexpected first line %q", line)
						return
					}
					ready <- nil
					continue
				}
				var n int
				if _, err := fmt.Sscanf(line, "acked %d", &n); err == nil {
					select {
					case ackCh <- n:
					default: // parent lagging; newer acks follow
					}
				}
			}
		}()
		select {
		case err := <-ready:
			if err != nil {
				t.Fatalf("round %d: helper never became ready: %v", round, err)
			}
		case <-time.After(30 * time.Second):
			_ = cmd.Process.Kill()
			t.Fatalf("round %d: helper timed out", round)
		}
		time.Sleep(time.Duration(5+round*7) * time.Millisecond)
		if err := cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		// Drain the scanner to EOF BEFORE Wait (Wait closes the pipe),
		// keeping the freshest ack floor the helper managed to report.
		<-scanDone
		_ = cmd.Wait() // exit status is the kill signal; ignore
		lastAcked := 0
		for loop := true; loop; {
			select {
			case n := <-ackCh:
				if n > lastAcked {
					lastAcked = n
				}
			default:
				loop = false
			}
		}

		l, err := Open(Config{Dir: dir, DefaultBudget: 0})
		if err != nil {
			t.Fatalf("round %d: replay after crash failed: %v", round, err)
		}
		spent := l.TotalSpent()
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		if spent < prev-1e-12 {
			t.Fatalf("round %d: spent ε went backwards: %g -> %g", round, prev, spent)
		}
		// The floor: prior rounds' replayed spend plus every charge this
		// round's helper acknowledged before the kill. Unacknowledged
		// records may legitimately land ABOVE the floor (over-count, never
		// under).
		floor := prev + 0.001*float64(lastAcked) - 1e-9
		if spent < floor {
			t.Fatalf("round %d: replay lost acknowledged charges: spent %g < floor %g (prev %g + %d acked × 0.001)",
				round, spent, floor, prev, lastAcked)
		}
		t.Logf("round %d: replayed spent ε = %g (previous %g, acked floor %d charges)", round, spent, prev, lastAcked)
		prev = spent
	}
	if prev == 0 {
		t.Fatal("no spend survived any crash round; helper never charged")
	}
}

// crashHelper runs in the child process: open (replaying prior rounds),
// ensure a principal exists, then charge from 8 concurrent goroutines —
// so the parent's SIGKILL lands mid-group-commit-batch with writers in
// flight — until killed. It prints "ready\n" once charging has begun,
// then "acked N" progress lines counting charges that have RETURNED
// (durable, acknowledged); the parent uses the last one as the replay
// floor.
func crashHelper(dir string) {
	l, err := Open(Config{Dir: dir, SnapshotEvery: 64})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash helper open:", err)
		os.Exit(1)
	}
	analysts := l.Analysts()
	var id string
	if len(analysts) > 0 {
		id = analysts[0].ID
	} else {
		info, _, err := l.CreateAnalyst("crash-dummy", 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crash helper create:", err)
			os.Exit(1)
		}
		id = info.ID
	}
	charge := g(0.001)
	var acked atomic.Uint64
	// First charge before "ready" so even an instant kill leaves state.
	if err := l.Charge(id, "d0", charge); err != nil {
		fmt.Fprintln(os.Stderr, "crash helper charge:", err)
		os.Exit(1)
	}
	acked.Add(1)
	fmt.Println("ready")
	for w := 0; w < 8; w++ {
		go func(w int) {
			ds := fmt.Sprintf("d%d", w)
			for {
				if err := l.Charge(id, ds, charge); err != nil {
					fmt.Fprintln(os.Stderr, "crash helper charge:", err)
					os.Exit(1)
				}
				acked.Add(1)
			}
		}(w)
	}
	for {
		fmt.Println("acked", acked.Load())
		time.Sleep(time.Millisecond)
	}
}
