// Package ledger is the privacy-budget control plane: durable,
// concurrency-safe accounting of every analyst's cumulative ε spend per
// dataset. It closes the cross-session composition gap the serving
// layer shipped with — without identity, one client could launder
// unlimited ε through many sessions; with the ledger, all of an
// analyst's sessions over a dataset draw from ONE budget account, so
// the Theorem 3.2/3.3 composition bound holds across the analyst's
// whole transcript, not just per session.
//
// An analyst is a principal with an API key (stored hashed, SHA-256;
// the plaintext is returned exactly once at creation). A budget account
// is keyed by (analyst, dataset) and backed by a core.Accountant, so
// charge arithmetic — NaN guards, the float tolerance, concurrent
// arbitration — is the same calculus sessions use.
//
// Durability contract: a charge is acknowledged only after its record is
// appended to the write-ahead log (and fsync'd unless Config.NoSync),
// so acknowledged spend survives crash and restart; the in-memory state
// is a cache over the log, never the other way around. Durable writes
// are GROUP-COMMITTED: a writer admits its record against the in-memory
// state under the mutex, parks it on a commit queue, releases the lock,
// and blocks until a single committer goroutine has written every
// queued record in one buffered write and fsync'd once — N concurrent
// charges amortize one fsync instead of paying N, and no caller
// observes a nil return (or releases noise) before its own record is
// stable. The failure modes all err toward counting MORE spend, never
// less: a crash between WAL append and the noisy answer leaves the
// charge spent with no answer released; a failed batch undoes the
// in-memory spend of every charge it carried (records of an
// unacknowledged batch that did reach the disk replay as spent — an
// over-count, never an under-count); a refund whose batch fails keeps
// the in-memory refund but replays as spent; a refund that can no
// longer be matched to its charge (e.g. across a snapshot compaction)
// is dropped and the charge stands. Replay tolerates a torn final WAL
// line (the record was never acknowledged) and refuses to open on
// corruption anywhere else.
//
// With Config.Dir empty the ledger runs in-memory: same semantics,
// nothing survives Close. Tests and demos use this mode.
package ledger

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"osdp/internal/core"
	"osdp/internal/dataset"
	"osdp/internal/telemetry"
)

// Typed errors; the serving layer maps them onto HTTP statuses.
var (
	// ErrBadKey marks authentication with an unknown or malformed API key.
	ErrBadKey = errors.New("ledger: unknown API key")
	// ErrDisabled marks operations on a disabled analyst.
	ErrDisabled = errors.New("ledger: analyst disabled")
	// ErrUnknownAnalyst marks operations naming an analyst id that does
	// not exist.
	ErrUnknownAnalyst = errors.New("ledger: unknown analyst")
	// ErrClosed marks operations on a closed ledger.
	ErrClosed = errors.New("ledger: closed")
)

// Config tunes a Ledger.
type Config struct {
	// Dir is the durable state directory; empty means in-memory (nothing
	// survives Close — tests and demos only).
	Dir string
	// DefaultBudget is the ε budget a (analyst, dataset) account starts
	// with when no explicit grant exists. 0 means unlimited, which is
	// almost never what a production deployment wants.
	DefaultBudget float64
	// SessionCap is the default cap on an analyst's concurrently open
	// sessions (0 = unlimited); per-analyst caps override it. Enforced by
	// the serving layer, recorded here so it survives restarts.
	SessionCap int
	// SnapshotEvery compacts the WAL into a snapshot after this many
	// appends (default 4096). Smaller values bound replay time and WAL
	// size tighter at the cost of more rewrite work.
	SnapshotEvery int
	// NoSync skips the per-batch fsync. Throughput benchmarks and tests
	// use it; with it set, a crash can lose charges the OS had not yet
	// flushed (it still never resurrects refunded ones).
	NoSync bool
	// FsyncBatchWindow stretches group commit: once at least one record
	// is queued, the committer waits this long for more to arrive before
	// writing and fsyncing the batch — trading single-caller latency for
	// fewer, larger fsyncs. 0 (the default) commits as soon as the
	// committer is free; concurrency alone then sets the batch size.
	FsyncBatchWindow time.Duration
	// Telemetry, when non-nil, registers the ledger's metric series
	// (charge/refund/replay/compaction counters, WAL append and fsync
	// latency histograms) on the given registry. Nil disables
	// collection at zero cost.
	Telemetry *telemetry.Registry
}

// AnalystInfo is the public description of a principal. The API key is
// never part of it; only the creation call returns the plaintext key.
type AnalystInfo struct {
	ID         string    `json:"id"`
	Name       string    `json:"name"`
	Created    time.Time `json:"created"`
	Disabled   bool      `json:"disabled,omitempty"`
	SessionCap int       `json:"session_cap,omitempty"` // 0 = server default
}

// AccountInfo reports one (analyst, dataset) budget account.
type AccountInfo struct {
	Analyst   string  `json:"analyst"`
	Dataset   string  `json:"dataset"`
	Budget    float64 `json:"budget"` // 0 = unlimited
	Spent     float64 `json:"spent"`
	Remaining float64 `json:"remaining"` // 0 when unlimited
	Charges   uint64  `json:"charges"`
	Guarantee string  `json:"guarantee"`
}

type acctKey struct{ analyst, dataset string }

type account struct {
	budget   float64
	explicit bool // budget came from an explicit grant, not DefaultBudget
	acct     *core.Accountant
	charges  uint64
}

type analystState struct {
	info    AnalystInfo
	keyHash string
}

// commitWaiter is one WAL record parked on the group-commit queue plus
// the channel its caller blocks on until the batch carrying it is
// durable. The channel is buffered so the committer never blocks waking
// a waiter.
type commitWaiter struct {
	rec      record
	enqueued time.Time
	done     chan error
}

// Ledger is the control plane. One mutex guards the in-memory state AND
// the sequence-number assignment of queued WAL records, so the durable
// log order always matches the order charges were admitted — the
// property replay correctness rests on. The WAL write itself happens
// OUTSIDE the mutex, on the single committer goroutine: writers enqueue
// under the lock and block on their batch afterwards, so reads
// (Authenticate on every request) no longer queue behind a charge's
// fsync, and concurrent charges share one.
type Ledger struct {
	cfg Config

	mu       sync.Mutex
	analysts map[string]*analystState
	byKey    map[string]string // sha256 hex of API key -> analyst id
	accounts map[acctKey]*account
	w        *wal // nil in memory mode
	seq      uint64
	appends  int // committed since the last snapshot
	closed   bool
	pending  []*commitWaiter // group-commit queue, drained by the committer

	// Committer lifecycle (nil / unused in memory mode). commitNotify is
	// buffered: an enqueue nudges the committer without blocking, and a
	// pending nudge coalesces with later ones.
	commitNotify  chan struct{}
	stop          chan struct{}
	committerDone chan struct{}
	closeErr      error // WAL close result, read after committerDone

	met ledgerMetrics
}

// Open opens (or creates) a ledger. With cfg.Dir set it replays the
// snapshot and WAL so spent budget survives restarts; with cfg.Dir
// empty it is purely in-memory.
func Open(cfg Config) (*Ledger, error) {
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 4096
	}
	l := &Ledger{
		cfg:      cfg,
		analysts: make(map[string]*analystState),
		byKey:    make(map[string]string),
		accounts: make(map[acctKey]*account),
		// Built before replay so replayed-record counts are observed.
		met: newLedgerMetrics(cfg.Telemetry),
	}
	if cfg.Dir == "" {
		return l, nil
	}

	snap, err := loadSnapshot(cfg.Dir)
	if err != nil {
		return nil, err
	}
	l.seq = snap.Seq
	for _, a := range snap.Analysts {
		st := &analystState{
			info: AnalystInfo{
				ID: a.ID, Name: a.Name, Created: a.Created,
				Disabled: a.Disabled, SessionCap: a.SessionCap,
			},
			keyHash: a.KeyHash,
		}
		l.analysts[a.ID] = st
		l.byKey[a.KeyHash] = a.ID
	}
	for _, s := range snap.Accounts {
		// Only explicit grants replay their snapshotted budget; default
		// accounts re-resolve against the CURRENT config default, so an
		// operator tightening DefaultBudget reaches them on restart.
		budget := s.Budget
		if !s.Explicit {
			budget = cfg.DefaultBudget
		}
		acc := &account{
			budget:   budget,
			explicit: s.Explicit,
			acct:     core.NewAccountant(budget),
			charges:  s.Charges,
		}
		// Deterministic order keeps replay reproducible.
		names := make([]string, 0, len(s.Spent))
		for name := range s.Spent {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if err := acc.acct.RestoreSpend(replayedGuarantee(name, s.Spent[name])); err != nil {
				return nil, fmt.Errorf("ledger: snapshot account %s/%s: %w", s.Analyst, s.Dataset, err)
			}
		}
		l.accounts[acctKey{s.Analyst, s.Dataset}] = acc
	}
	truncateTo, err := replayWAL(cfg.Dir, snap.Seq, l.applyReplayed)
	if err != nil {
		return nil, err
	}
	if truncateTo >= 0 {
		// Cut the torn fragment off BEFORE appending: a new record
		// written after it would merge into one corrupt line and read as
		// a droppable torn tail on the next restart — losing spend that
		// WAS acknowledged.
		if err := os.Truncate(filepath.Join(cfg.Dir, walFile), truncateTo); err != nil {
			return nil, fmt.Errorf("ledger: truncating torn WAL tail: %w", err)
		}
	}
	if l.w, err = openWAL(cfg.Dir, !cfg.NoSync); err != nil {
		return nil, err
	}
	l.w.met = l.met
	l.commitNotify = make(chan struct{}, 1)
	l.stop = make(chan struct{})
	l.committerDone = make(chan struct{})
	go l.runCommitter()
	return l, nil
}

// replayedGuarantee rebuilds a Guarantee from its durable form. Only the
// policy NAME round-trips through the log — predicates do not serialise
// — so replayed charges carry a name-preserving, all-sensitive
// placeholder predicate. That is the conservative direction for
// MinimumRelaxation composition: a placeholder never relaxes the other
// policies in the composite, and the ε arithmetic (what the budget
// check uses) is exact either way.
func replayedGuarantee(policyName string, eps float64) core.Guarantee {
	return core.Guarantee{Policy: dataset.NewPolicy(policyName, dataset.True()), Epsilon: eps}
}

// applyReplayed folds one WAL record into the in-memory state during
// Open. Charges use RestoreSpend, not Spend: a logged charge was
// acknowledged in a previous life and must be honoured even if the
// budget was lowered afterwards.
func (l *Ledger) applyReplayed(rec record) error {
	l.met.replayed.Inc()
	if rec.Seq > l.seq {
		l.seq = rec.Seq
	}
	switch rec.Kind {
	case "analyst":
		st := &analystState{
			info: AnalystInfo{
				ID: rec.ID, Name: rec.Name, Created: rec.Created,
				SessionCap: rec.SessionCap,
			},
			keyHash: rec.KeyHash,
		}
		l.analysts[rec.ID] = st
		l.byKey[rec.KeyHash] = rec.ID
	case "disable":
		if st, ok := l.analysts[rec.ID]; ok {
			st.info.Disabled = rec.Disabled
		}
	case "budget":
		l.setBudgetLocked(rec.Analyst, rec.Dataset, rec.Budget)
	case "charge":
		acc := l.accountLocked(rec.Analyst, rec.Dataset)
		if err := acc.acct.RestoreSpend(replayedGuarantee(rec.Policy, rec.Eps)); err != nil {
			return fmt.Errorf("ledger: replaying charge seq %d: %w", rec.Seq, err)
		}
		acc.charges++
	case "refund":
		acc := l.accountLocked(rec.Analyst, rec.Dataset)
		// A refund that no longer matches is dropped: the charge stands,
		// which over-counts spend — the safe direction.
		_ = acc.acct.Refund(replayedGuarantee(rec.Policy, rec.Eps))
	default:
		return fmt.Errorf("ledger: unknown WAL record kind %q (seq %d)", rec.Kind, rec.Seq)
	}
	return nil
}

// Close drains the commit queue (admitted writers still get a real
// durability verdict), stops the committer, and closes the WAL. Further
// operations fail with ErrClosed.
func (l *Ledger) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true // no new records can enqueue past this point
	l.mu.Unlock()
	if l.w == nil {
		return nil
	}
	close(l.stop)
	<-l.committerDone
	return l.closeErr
}

// Durable reports whether the ledger persists to disk.
func (l *Ledger) Durable() bool { return l.cfg.Dir != "" }

// enqueueLocked assigns the next sequence number and, on a durable
// ledger, parks the record on the group-commit queue, returning the
// waiter the caller must await AFTER releasing l.mu. In-memory ledgers
// return nil (sequence numbers are still consumed). Callers hold l.mu
// and must have applied the record's in-memory effect already: the
// committer may fold any enqueued record into a snapshot, and a
// snapshot at sequence S must contain the effect of every record at or
// below S.
func (l *Ledger) enqueueLocked(rec record) *commitWaiter {
	l.seq++
	rec.Seq = l.seq
	if l.w == nil {
		return nil
	}
	wtr := &commitWaiter{rec: rec, enqueued: time.Now(), done: make(chan error, 1)}
	l.pending = append(l.pending, wtr)
	select {
	case l.commitNotify <- struct{}{}:
	default: // committer already nudged
	}
	return wtr
}

// await blocks until wtr's batch is durable and returns the batch
// verdict (nil waiter = in-memory ledger, immediately fine). Callers
// must NOT hold l.mu — the committer needs it to drain the queue.
func (l *Ledger) await(wtr *commitWaiter) error {
	if wtr == nil {
		return nil
	}
	err := <-wtr.done
	l.met.commitWait.ObserveDuration(time.Since(wtr.enqueued))
	return err
}

// runCommitter is the single WAL writer: nudged by enqueueLocked, it
// drains the queue, writes each drained batch in one buffered write,
// fsyncs once, and wakes every waiter — so N concurrent charges
// amortize one fsync. On Close it drains what was admitted before the
// closed flag flipped, then closes the WAL.
func (l *Ledger) runCommitter() {
	defer close(l.committerDone)
	for {
		select {
		case <-l.commitNotify:
			l.commitPending()
		case <-l.stop:
			l.commitPending()
			l.closeErr = l.w.close()
			return
		}
	}
}

// commitPending drains and commits batches until the queue is empty.
func (l *Ledger) commitPending() {
	for {
		l.mu.Lock()
		n := len(l.pending)
		l.mu.Unlock()
		if n == 0 {
			return
		}
		if l.cfg.FsyncBatchWindow > 0 {
			// Something is queued; linger so stragglers join this batch
			// instead of paying their own fsync.
			time.Sleep(l.cfg.FsyncBatchWindow)
		} else {
			// One scheduler yield before sealing the batch: writers the
			// last commit just woke get to finish their next enqueue, so
			// a saturated core produces full batches instead of
			// alternating 1-record and (N-1)-record ones. When nothing
			// else is runnable this costs well under a microsecond.
			runtime.Gosched()
		}
		l.mu.Lock()
		batch := l.pending
		l.pending = nil
		l.mu.Unlock()
		l.commitBatch(batch)
	}
}

// commitBatch writes one batch, wakes its waiters with the shared
// verdict, and runs snapshot compaction on schedule. Rollback of a
// failed batch is the WAITERS' job (each undoes its own in-memory
// effect with the lock held), because only they know what they applied.
func (l *Ledger) commitBatch(batch []*commitWaiter) {
	recs := make([]record, len(batch))
	for i, wtr := range batch {
		recs[i] = wtr.rec
	}
	err := l.w.appendBatch(recs)
	if err == nil {
		l.met.batchRecords.Observe(float64(len(batch)))
	}
	for _, wtr := range batch {
		wtr.done <- err
	}
	if err != nil {
		return
	}
	l.mu.Lock()
	l.appends += len(batch)
	due := l.appends >= l.cfg.SnapshotEvery
	var snap snapshot
	if due {
		// Compaction failure is not fatal to the batch that triggered
		// it: the WAL already holds its records. Keep serving; the next
		// batch retries. Records still queued at snapshot time are
		// covered too — their seq is at or below the snapshot's and
		// their in-memory effect was applied before they enqueued, so
		// replay skipping them is exact (if their batch later fails,
		// the snapshot over-counts an unacknowledged record — the safe
		// direction, never an under-count).
		snap = l.buildSnapshotLocked()
	}
	l.mu.Unlock()
	if !due {
		return
	}
	// The snapshot write happens OUTSIDE l.mu: holding the mutex across
	// file I/O would re-serialise every concurrent charge behind the
	// disk, undoing group commit (this is the invariant fsyncunderlock
	// enforces). Only this committer goroutine touches the WAL handle,
	// so releasing the lock is safe; charges admitted while the file is
	// being written carry seq above snap.Seq and replay on recovery.
	if err := l.w.writeSnapshot(snap); err != nil {
		return // WAL still holds everything; the next batch retries.
	}
	l.mu.Lock()
	if err := l.compactLocked(); err == nil {
		l.appends = 0
		l.met.compactions.Inc()
	}
	l.mu.Unlock()
}

// buildSnapshotLocked assembles the compacted durable state under l.mu;
// the caller writes it to disk after releasing the lock.
func (l *Ledger) buildSnapshotLocked() snapshot {
	snap := snapshot{Seq: l.seq}
	for id, st := range l.analysts {
		snap.Analysts = append(snap.Analysts, snapAnalyst{
			ID: id, Name: st.info.Name, KeyHash: st.keyHash,
			Created: st.info.Created, Disabled: st.info.Disabled,
			SessionCap: st.info.SessionCap,
		})
	}
	sort.Slice(snap.Analysts, func(i, j int) bool { return snap.Analysts[i].ID < snap.Analysts[j].ID })
	for key, acc := range l.accounts {
		spent := make(map[string]float64)
		for _, g := range acc.acct.Charges() {
			spent[g.Policy.Name()] += g.Epsilon
		}
		snap.Accounts = append(snap.Accounts, snapAccount{
			Analyst: key.analyst, Dataset: key.dataset,
			Budget: acc.budget, Explicit: acc.explicit,
			Charges: acc.charges, Spent: spent,
		})
	}
	sort.Slice(snap.Accounts, func(i, j int) bool {
		a, b := snap.Accounts[i], snap.Accounts[j]
		if a.Analyst != b.Analyst {
			return a.Analyst < b.Analyst
		}
		return a.Dataset < b.Dataset
	})
	return snap
}

// compactLocked rebuilds each in-memory accountant from its per-policy
// aggregates so charge lists do not grow without bound. It aggregates
// CURRENT charges, not the snapshot just written: charges admitted
// while the snapshot write was in flight must survive compaction
// (their WAL records replay on recovery, so in-memory and durable
// state stay aligned). A refund for a pre-compaction charge will no
// longer match and is dropped — documented safe direction.
func (l *Ledger) compactLocked() error {
	for key, acc := range l.accounts {
		spent := make(map[string]float64)
		for _, g := range acc.acct.Charges() {
			spent[g.Policy.Name()] += g.Epsilon
		}
		fresh := core.NewAccountant(acc.budget)
		names := make([]string, 0, len(spent))
		for name := range spent {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if err := fresh.RestoreSpend(replayedGuarantee(name, spent[name])); err != nil {
				return fmt.Errorf("ledger: compacting account %s/%s: %w", key.analyst, key.dataset, err)
			}
		}
		acc.acct = fresh
	}
	return nil
}

// CreateAnalyst mints a principal and returns its info plus the
// plaintext API key — the ONLY time the key is available; the ledger
// stores a SHA-256 hash. sessionCap overrides the config default when
// > 0.
func (l *Ledger) CreateAnalyst(name string, sessionCap int) (AnalystInfo, string, error) {
	name = strings.TrimSpace(name)
	if name == "" {
		return AnalystInfo{}, "", fmt.Errorf("ledger: analyst name must not be empty")
	}
	if sessionCap < 0 {
		return AnalystInfo{}, "", fmt.Errorf("ledger: session cap %d must be non-negative", sessionCap)
	}
	// The id is public and the key is secret, so they must come from
	// independent randomness — an id derived from key bytes would leak a
	// prefix of the credential.
	var raw [26]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return AnalystInfo{}, "", fmt.Errorf("ledger: generating API key: %w", err)
	}
	key := "osdp_" + hex.EncodeToString(raw[:20])
	hash := hashKey(key)
	id := "a-" + hex.EncodeToString(raw[20:])

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return AnalystInfo{}, "", ErrClosed
	}
	if _, dup := l.analysts[id]; dup {
		l.mu.Unlock()
		return AnalystInfo{}, "", fmt.Errorf("ledger: analyst id collision, retry")
	}
	info := AnalystInfo{ID: id, Name: name, Created: time.Now().UTC(), SessionCap: sessionCap}
	// Mutate in-memory state BEFORE enqueueing: a snapshot covering this
	// record's seq must already contain it, or the subsequent WAL
	// truncation would drop the analyst. Same ordering rule as Charge;
	// every WAL writer follows it.
	l.analysts[id] = &analystState{info: info, keyHash: hash}
	l.byKey[hash] = id
	wtr := l.enqueueLocked(record{
		Kind: "analyst", ID: id, Name: name, KeyHash: hash,
		Created: info.Created, SessionCap: sessionCap,
	})
	l.mu.Unlock()
	if err := l.await(wtr); err != nil {
		l.mu.Lock()
		delete(l.analysts, id)
		delete(l.byKey, hash)
		l.mu.Unlock()
		return AnalystInfo{}, "", err
	}
	return info, key, nil
}

// Authenticate resolves an API key to its analyst. Unknown keys get
// ErrBadKey; disabled analysts get ErrDisabled.
func (l *Ledger) Authenticate(key string) (AnalystInfo, error) {
	hash := hashKey(key)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return AnalystInfo{}, ErrClosed
	}
	id, ok := l.byKey[hash]
	if !ok {
		return AnalystInfo{}, ErrBadKey
	}
	st := l.analysts[id]
	if st.info.Disabled {
		return AnalystInfo{}, fmt.Errorf("%w: %s", ErrDisabled, id)
	}
	return st.info, nil
}

// Analyst returns a principal's info by id.
func (l *Ledger) Analyst(id string) (AnalystInfo, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.analysts[id]
	if !ok {
		return AnalystInfo{}, fmt.Errorf("%w: %q", ErrUnknownAnalyst, id)
	}
	return st.info, nil
}

// Analysts lists principals sorted by id.
func (l *Ledger) Analysts() []AnalystInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]AnalystInfo, 0, len(l.analysts))
	for _, st := range l.analysts {
		out = append(out, st.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SetDisabled flips a principal's disabled flag. Disabling revokes the
// key's access immediately; spent budget is retained forever.
func (l *Ledger) SetDisabled(id string, disabled bool) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	st, ok := l.analysts[id]
	if !ok {
		l.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownAnalyst, id)
	}
	if st.info.Disabled == disabled {
		l.mu.Unlock()
		return nil
	}
	// In-memory first: a snapshot covering this record must carry the
	// flag (losing a revocation record would re-arm a revoked key).
	st.info.Disabled = disabled
	wtr := l.enqueueLocked(record{Kind: "disable", ID: id, Disabled: disabled})
	l.mu.Unlock()
	if err := l.await(wtr); err != nil {
		l.mu.Lock()
		st.info.Disabled = !disabled
		l.mu.Unlock()
		return err
	}
	return nil
}

// SetBudget grants (analyst, dataset) an explicit ε budget, replacing
// the default. Lowering the budget below the spent total is allowed —
// the account simply refuses all further charges; the spend history is
// untouched.
func (l *Ledger) SetBudget(analyst, ds string, budget float64) error {
	if math.IsNaN(budget) || math.IsInf(budget, 0) || budget < 0 {
		return fmt.Errorf("ledger: budget %g must be finite and non-negative", budget)
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if _, ok := l.analysts[analyst]; !ok {
		l.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownAnalyst, analyst)
	}
	// In-memory first (see CreateAnalyst); roll the budget back if the
	// grant fails to persist. The rollback rebuilds around the PREVIOUS
	// budget rather than restoring a struct copy: charges admitted while
	// this call awaited durability must survive the rollback, or live
	// memory would under-count them.
	key := acctKey{analyst, ds}
	var prevBudget float64
	var prevExplicit bool
	prev, had := l.accounts[key]
	if had {
		prevBudget, prevExplicit = prev.budget, prev.explicit
	}
	l.setBudgetLocked(analyst, ds, budget)
	wtr := l.enqueueLocked(record{Kind: "budget", Analyst: analyst, Dataset: ds, Budget: budget})
	l.mu.Unlock()
	if err := l.await(wtr); err != nil {
		l.mu.Lock()
		if had {
			l.setBudgetLocked(analyst, ds, prevBudget)
			l.accounts[key].explicit = prevExplicit
		} else {
			// The grant created the account; demote it back to the config
			// default (it may have taken charges meanwhile, so it cannot
			// simply be deleted).
			l.setBudgetLocked(analyst, ds, l.cfg.DefaultBudget)
			l.accounts[key].explicit = false
		}
		l.mu.Unlock()
		return err
	}
	return nil
}

// setBudgetLocked rebuilds the account's accountant around the new
// budget, carrying spend over via RestoreSpend (which permits spent >
// budget).
func (l *Ledger) setBudgetLocked(analyst, ds string, budget float64) {
	key := acctKey{analyst, ds}
	acc, ok := l.accounts[key]
	if !ok {
		l.accounts[key] = &account{budget: budget, explicit: true, acct: core.NewAccountant(budget)}
		return
	}
	fresh := core.NewAccountant(budget)
	for _, g := range acc.acct.Charges() {
		// Guarantees carry live policies here (not just names), so the
		// composite survives the rebuild exactly.
		if err := fresh.RestoreSpend(g); err != nil {
			// Unreachable: recorded charges are always valid ε.
			panic(fmt.Sprintf("ledger: rebuilding account %s/%s: %v", analyst, ds, err))
		}
	}
	acc.budget, acc.explicit, acc.acct = budget, true, fresh
}

// accountLocked fetches or creates the (analyst, dataset) account.
func (l *Ledger) accountLocked(analyst, ds string) *account {
	key := acctKey{analyst, ds}
	acc, ok := l.accounts[key]
	if !ok {
		acc = &account{budget: l.cfg.DefaultBudget, acct: core.NewAccountant(l.cfg.DefaultBudget)}
		l.accounts[key] = acc
	}
	return acc
}

// Charge spends g.Epsilon from the analyst's account for ds. The charge
// is admitted against the budget FIRST and becomes durable before
// Charge returns; callers must not release any noise before a nil
// return. Budget rejections wrap core.ErrBudgetExceeded.
//
// An optional request trace may be passed as the trailing argument; on
// durable ledgers the time spent parked in the group-commit queue is
// then recorded as a "ledger.commit_wait" span.
func (l *Ledger) Charge(analyst, ds string, g core.Guarantee, trace ...*telemetry.Trace) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	st, ok := l.analysts[analyst]
	if !ok {
		l.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownAnalyst, analyst)
	}
	if st.info.Disabled {
		l.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrDisabled, analyst)
	}
	acc := l.accountLocked(analyst, ds)
	if err := acc.acct.Spend(g); err != nil {
		l.mu.Unlock()
		return fmt.Errorf("ledger: account %s/%s: %w", analyst, ds, err)
	}
	// Count before enqueueing: a snapshot covering this record must
	// include the charge it describes.
	acc.charges++
	wtr := l.enqueueLocked(record{
		Kind: "charge", Analyst: analyst, Dataset: ds,
		Eps: g.Epsilon, Policy: g.Policy.Name(),
	})
	l.mu.Unlock()
	var sp telemetry.SpanEnd
	if wtr != nil && len(trace) > 0 {
		sp = trace[0].StartSpan("ledger.commit_wait")
	}
	err := l.await(wtr)
	sp.End()
	if err != nil {
		// Not durable => not admitted: undo the in-memory spend. (If the
		// record did reach the disk before the batch failed, replay will
		// over-count it — never under.)
		l.mu.Lock()
		acc.charges--
		_ = acc.acct.Refund(g)
		l.mu.Unlock()
		return err
	}
	l.met.charges.Inc()
	return nil
}

// Refund returns a charge admitted by Charge, for use ONLY when the
// mechanism failed before drawing any noise. If the in-memory charge no
// longer matches (e.g. compacted away), the charge stands and Refund
// reports the mismatch; if only the durable append fails, the in-memory
// refund stands and replay will over-count — both err toward more
// recorded spend, never less.
func (l *Ledger) Refund(analyst, ds string, g core.Guarantee) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	acc, ok := l.accounts[acctKey{analyst, ds}]
	if !ok {
		l.mu.Unlock()
		return fmt.Errorf("ledger: no account %s/%s to refund", analyst, ds)
	}
	if err := acc.acct.Refund(g); err != nil {
		l.mu.Unlock()
		return err
	}
	wtr := l.enqueueLocked(record{
		Kind: "refund", Analyst: analyst, Dataset: ds,
		Eps: g.Epsilon, Policy: g.Policy.Name(),
	})
	l.mu.Unlock()
	err := l.await(wtr)
	if err == nil {
		// Counted only after durability: a refund whose batch failed must
		// not inflate the metric (the in-memory refund stands regardless —
		// replay then over-counts, never under).
		l.met.refunds.Inc()
	}
	return err
}

// Account reports one (analyst, dataset) account; an untouched pair
// reports the budget it WOULD have (default or explicit grant) with
// zero spend.
func (l *Ledger) Account(analyst, ds string) (AccountInfo, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.analysts[analyst]; !ok {
		return AccountInfo{}, fmt.Errorf("%w: %q", ErrUnknownAnalyst, analyst)
	}
	acc, ok := l.accounts[acctKey{analyst, ds}]
	if !ok {
		return AccountInfo{
			Analyst: analyst, Dataset: ds,
			Budget: l.cfg.DefaultBudget, Remaining: l.cfg.DefaultBudget,
			Guarantee: core.Guarantee{Policy: dataset.AllSensitive()}.String(),
		}, nil
	}
	return accountInfo(analyst, ds, acc), nil
}

// Accounts lists every touched account, sorted by (analyst, dataset).
func (l *Ledger) Accounts() []AccountInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]AccountInfo, 0, len(l.accounts))
	for key, acc := range l.accounts {
		out = append(out, accountInfo(key.analyst, key.dataset, acc))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Analyst != out[j].Analyst {
			return out[i].Analyst < out[j].Analyst
		}
		return out[i].Dataset < out[j].Dataset
	})
	return out
}

// TotalSpent sums ε across all accounts — the coarse health number
// /stats reports.
func (l *Ledger) TotalSpent() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var total float64
	for _, acc := range l.accounts {
		total += acc.acct.Spent()
	}
	return total
}

// Counts reports how many analysts and touched accounts exist.
func (l *Ledger) Counts() (analysts, accounts int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.analysts), len(l.accounts)
}

// DefaultSessionCap returns the config default for per-analyst
// concurrent sessions (0 = unlimited).
func (l *Ledger) DefaultSessionCap() int { return l.cfg.SessionCap }

func accountInfo(analyst, ds string, acc *account) AccountInfo {
	spent, composite := acc.acct.Snapshot()
	remaining := acc.budget - spent
	if acc.budget == 0 || remaining < 0 {
		remaining = 0
	}
	return AccountInfo{
		Analyst: analyst, Dataset: ds,
		Budget: acc.budget, Spent: spent, Remaining: remaining,
		Charges: acc.charges, Guarantee: composite.String(),
	}
}

func hashKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}
