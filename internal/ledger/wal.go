package ledger

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Durable layout inside Config.Dir:
//
//	wal.jsonl      append-only log, one JSON record per line
//	snapshot.json  periodic compaction of everything up to Seq
//
// Every record carries a strictly increasing sequence number. A snapshot
// stores the sequence of the last record it folds in; replay applies the
// snapshot and then only WAL records with a HIGHER sequence, so the
// crash window between "snapshot renamed into place" and "WAL
// truncated" cannot double-count a charge.
//
// Crash tolerance on replay: a torn FINAL line (the classic kill-mid-
// write artifact) is discarded — the record it would have described was
// never acknowledged, so dropping it never under-counts acknowledged
// spend. A malformed line anywhere BEFORE the final one means the file
// was corrupted, not torn, and Open refuses to start rather than serve
// from a ledger that may under-count.

const (
	walFile      = "wal.jsonl"
	snapshotFile = "snapshot.json"
)

// record is the single WAL record shape; Kind selects which fields are
// meaningful. One flat struct keeps the append path free of interface
// dispatch and reflection surprises.
type record struct {
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"` // "analyst" | "disable" | "budget" | "charge" | "refund"

	// analyst / disable
	ID      string `json:"id,omitempty"`
	Name    string `json:"name,omitempty"`
	KeyHash string `json:"key_sha256,omitempty"`
	// omitzero, not omitempty: omitempty never drops a struct, and this
	// field rides every hot-path charge record.
	Created    time.Time `json:"created,omitzero"`
	Disabled   bool      `json:"disabled,omitempty"`
	SessionCap int       `json:"session_cap,omitempty"`

	// budget / charge / refund
	Analyst string  `json:"analyst,omitempty"`
	Dataset string  `json:"dataset,omitempty"`
	Budget  float64 `json:"budget,omitempty"`
	Eps     float64 `json:"eps,omitempty"`
	Policy  string  `json:"policy,omitempty"`
}

// snapshot is the compacted state: everything the WAL said up to and
// including Seq. Per-account spend is aggregated per policy name, so a
// snapshot's size is bounded by (analysts × datasets × policies), not by
// query count.
type snapshot struct {
	Seq      uint64        `json:"seq"`
	Analysts []snapAnalyst `json:"analysts"`
	Accounts []snapAccount `json:"accounts"`
}

type snapAnalyst struct {
	ID         string    `json:"id"`
	Name       string    `json:"name"`
	KeyHash    string    `json:"key_sha256"`
	Created    time.Time `json:"created"`
	Disabled   bool      `json:"disabled,omitempty"`
	SessionCap int       `json:"session_cap,omitempty"`
}

type snapAccount struct {
	Analyst string  `json:"analyst"`
	Dataset string  `json:"dataset"`
	Budget  float64 `json:"budget,omitempty"`
	// Explicit distinguishes an operator grant from the config default;
	// a default-budget account is re-resolved against the CURRENT
	// Config.DefaultBudget on open, so tightening the default applies
	// to every non-granted account regardless of snapshot timing.
	Explicit bool               `json:"explicit,omitempty"`
	Charges  uint64             `json:"charges"`
	Spent    map[string]float64 `json:"spent"` // policy name -> Σε
}

// ErrWALBroken marks a WAL that refused all further appends after an
// I/O failure it could not cleanly recover from (a short write it
// could not truncate away, or any fsync failure — after a failed fsync
// the kernel may have dropped dirty pages without saying which, so no
// later append can vouch for anything before it). The in-memory state
// is still served read-only-ish; restart to replay and recover.
var ErrWALBroken = errors.New("ledger: WAL disabled after an unrecoverable write error; restart to recover")

// wal is the open write handle plus the append buffer it reuses. All
// writes go through the owning Ledger's single committer goroutine, so
// no field here needs its own lock.
type wal struct {
	dir    string
	f      *os.File
	buf    []byte
	sync   bool
	size   int64 // current byte length; batch failures truncate back to it
	broken bool
	met    ledgerMetrics // set by Open after the WAL handle exists
}

func openWAL(dir string, sync bool) (*wal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledger: creating %s: %w", dir, err)
	}
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: opening WAL: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ledger: sizing WAL: %w", err)
	}
	// Persist the file's directory entry NOW: per-append fsync flushes
	// the data blocks, but a freshly created wal.jsonl whose dir entry
	// was never synced can vanish wholesale on power loss — erasing
	// every acknowledged charge before the first snapshot.
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return &wal{dir: dir, f: f, sync: sync, size: st.Size()}, nil
}

// appendBatch writes one group-commit batch — every record on its own
// line, one buffered write, one fsync — and returns only after the
// whole batch is stable (unless fsync is disabled). No record in the
// batch is acknowledged to its caller before this returns, so
// acknowledged spend survives a crash; N concurrent charges in one
// batch amortize a single fsync.
//
// Failure handling: a marshal error happens before any byte reaches
// the file, leaving the WAL clean. A short write leaves a torn line
// MID-file — which replay would refuse as corruption — so the file is
// truncated back to the last good batch; if even that fails, or if the
// fsync itself fails, the WAL flips to broken and every later append
// returns ErrWALBroken rather than pretending durability it cannot
// deliver.
func (w *wal) appendBatch(recs []record) error {
	if w.broken {
		return ErrWALBroken
	}
	start := time.Now()
	w.buf = w.buf[:0]
	for i := range recs {
		body, err := json.Marshal(&recs[i])
		if err != nil {
			return fmt.Errorf("ledger: encoding WAL record: %w", err)
		}
		w.buf = append(w.buf, body...)
		w.buf = append(w.buf, '\n')
	}
	if _, err := w.f.Write(w.buf); err != nil {
		if terr := w.f.Truncate(w.size); terr != nil {
			w.broken = true
		}
		return fmt.Errorf("ledger: appending WAL batch: %w", err)
	}
	w.size += int64(len(w.buf))
	if w.sync {
		syncStart := time.Now()
		if err := w.f.Sync(); err != nil {
			w.broken = true
			return fmt.Errorf("ledger: syncing WAL: %w", err)
		}
		w.met.walFsync.ObserveDuration(time.Since(syncStart))
	}
	w.met.walAppend.ObserveDuration(time.Since(start))
	return nil
}

// writeSnapshot atomically replaces snapshot.json (write temp, fsync,
// rename) and then truncates the WAL. A crash between the rename and the
// truncation is safe: replay skips WAL records at or below snap.Seq.
func (w *wal) writeSnapshot(snap snapshot) error {
	body, err := json.MarshalIndent(snap, "", " ")
	if err != nil {
		return fmt.Errorf("ledger: encoding snapshot: %w", err)
	}
	tmp := filepath.Join(w.dir, snapshotFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: creating snapshot temp: %w", err)
	}
	if _, err := f.Write(append(body, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("ledger: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("ledger: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("ledger: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, snapshotFile)); err != nil {
		return fmt.Errorf("ledger: installing snapshot: %w", err)
	}
	// Force the rename's directory entry to disk BEFORE truncating the
	// WAL: a crash that persisted the truncation but not the rename
	// would replay the OLD snapshot against an empty WAL, under-counting
	// acknowledged spend.
	if err := syncDir(w.dir); err != nil {
		return err
	}
	// The snapshot now owns every record; start the WAL afresh. Reopen
	// with O_TRUNC rather than Truncate on the live handle so the append
	// offset resets too.
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("ledger: closing WAL for truncation: %w", err)
	}
	f2, err := os.OpenFile(filepath.Join(w.dir, walFile), os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: reopening WAL: %w", err)
	}
	w.f = f2
	w.size = 0
	return nil
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ledger: opening %s for sync: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("ledger: syncing %s: %w", dir, err)
	}
	return nil
}

func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// loadSnapshot reads snapshot.json; a missing file is a fresh ledger.
func loadSnapshot(dir string) (snapshot, error) {
	var snap snapshot
	body, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if errors.Is(err, os.ErrNotExist) {
		return snap, nil
	}
	if err != nil {
		return snap, fmt.Errorf("ledger: reading snapshot: %w", err)
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		return snap, fmt.Errorf("ledger: snapshot %s is corrupt: %w", filepath.Join(dir, snapshotFile), err)
	}
	return snap, nil
}

// replayWAL applies records with Seq > afterSeq in file order, tolerating
// a torn final line and rejecting corruption anywhere else. When the
// tail is torn it returns the byte length of the valid prefix so the
// caller can truncate the file BEFORE reopening it for append — the
// next acknowledged record must start on its own line, or it would
// merge with the fragment and read as a torn tail itself on the next
// restart, silently dropping acknowledged spend. truncateTo is -1 when
// the file is intact (or absent).
func replayWAL(dir string, afterSeq uint64, apply func(record) error) (truncateTo int64, err error) {
	body, err := os.ReadFile(filepath.Join(dir, walFile))
	if errors.Is(err, os.ErrNotExist) {
		return -1, nil
	}
	if err != nil {
		return -1, fmt.Errorf("ledger: reading WAL: %w", err)
	}
	lines := bytes.Split(body, []byte("\n"))
	// Index of the last non-empty line: only THAT line may be torn.
	last := -1
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) > 0 {
			last = i
		}
	}
	var offset int64
	for i, line := range lines {
		lineStart := offset
		offset += int64(len(line))
		if i < len(lines)-1 {
			offset++ // the split-away '\n'
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			if i == last {
				// Torn tail from a crash mid-append: the record was never
				// acknowledged, so dropping it never under-counts.
				return lineStart, nil
			}
			return -1, fmt.Errorf("ledger: WAL line %d is corrupt (not a torn tail): %v", i+1, err)
		}
		if rec.Seq <= afterSeq {
			continue // already folded into the snapshot
		}
		if err := apply(rec); err != nil {
			return -1, err
		}
	}
	return -1, nil
}
