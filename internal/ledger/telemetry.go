package ledger

import "osdp/internal/telemetry"

// ledgerMetrics bundles the ledger's instruments. The zero value (every
// field nil) is the disabled state — telemetry metrics are nil-safe, so
// call sites update unconditionally.
type ledgerMetrics struct {
	charges      *telemetry.Counter
	refunds      *telemetry.Counter
	replayed     *telemetry.Counter
	compactions  *telemetry.Counter
	walAppend    *telemetry.Histogram
	walFsync     *telemetry.Histogram
	batchRecords *telemetry.Histogram
	commitWait   *telemetry.Histogram
}

// newLedgerMetrics registers the ledger series on r (nil r disables).
func newLedgerMetrics(r *telemetry.Registry) ledgerMetrics {
	if r == nil {
		return ledgerMetrics{}
	}
	return ledgerMetrics{
		charges: r.NewCounter("osdp_ledger_charges_total",
			"Budget charges acknowledged (durable before acknowledgement when the ledger has a directory)."),
		refunds: r.NewCounter("osdp_ledger_refunds_total",
			"Charges refunded after a mechanism failed before drawing noise."),
		replayed: r.NewCounter("osdp_ledger_replayed_records_total",
			"WAL records replayed during Open, after snapshot restore."),
		compactions: r.NewCounter("osdp_ledger_compactions_total",
			"Snapshot compactions of the WAL."),
		walAppend: r.NewHistogram("osdp_ledger_wal_append_seconds",
			"Latency of one WAL record append, including fsync.", nil),
		walFsync: r.NewHistogram("osdp_ledger_wal_fsync_seconds",
			"Latency of the fsync portion of a WAL append.", nil),
		batchRecords: r.NewHistogram("osdp_ledger_fsync_batch_records",
			"Records per committed group-commit WAL batch (one fsync each).",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
		commitWait: r.NewHistogram("osdp_ledger_group_commit_wait_seconds",
			"Time a durable write waits from enqueue to batch durability.", nil),
	}
}
