package ledger

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	"osdp/internal/core"
	"osdp/internal/dataset"
)

func mem(t *testing.T, cfg Config) *Ledger {
	t.Helper()
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func g(eps float64) core.Guarantee {
	return core.Guarantee{Policy: dataset.NewPolicy("gdpr", dataset.True()), Epsilon: eps}
}

func TestAnalystLifecycle(t *testing.T) {
	l := mem(t, Config{})

	info, key, err := l.CreateAnalyst("alice", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(key, "osdp_") || len(key) != len("osdp_")+40 {
		t.Fatalf("key %q has unexpected shape", key)
	}
	if strings.Contains(info.ID, strings.TrimPrefix(key, "osdp_")[:8]) {
		t.Fatal("analyst id must not leak key bytes")
	}
	if info.SessionCap != 3 {
		t.Fatalf("session cap %d, want 3", info.SessionCap)
	}

	got, err := l.Authenticate(key)
	if err != nil || got.ID != info.ID {
		t.Fatalf("authenticate: %+v, %v", got, err)
	}
	if _, err := l.Authenticate("osdp_" + strings.Repeat("0", 40)); !errors.Is(err, ErrBadKey) {
		t.Fatalf("bad key: got %v, want ErrBadKey", err)
	}

	// Disable revokes access; re-enable restores it.
	if err := l.SetDisabled(info.ID, true); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Authenticate(key); !errors.Is(err, ErrDisabled) {
		t.Fatalf("disabled analyst: got %v, want ErrDisabled", err)
	}
	if err := l.Charge(info.ID, "d", g(0.1)); !errors.Is(err, ErrDisabled) {
		t.Fatalf("charge while disabled: got %v, want ErrDisabled", err)
	}
	if err := l.SetDisabled(info.ID, false); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Authenticate(key); err != nil {
		t.Fatalf("re-enabled analyst: %v", err)
	}

	if _, err := l.Analyst("a-nope"); !errors.Is(err, ErrUnknownAnalyst) {
		t.Fatalf("unknown analyst: got %v, want ErrUnknownAnalyst", err)
	}
	if _, _, err := l.CreateAnalyst("  ", 0); err == nil {
		t.Fatal("blank analyst name should be rejected")
	}
}

func TestChargeRefundAndBudgets(t *testing.T) {
	l := mem(t, Config{DefaultBudget: 1})
	a, _, err := l.CreateAnalyst("alice", 0)
	if err != nil {
		t.Fatal(err)
	}

	// Default budget applies to an untouched account.
	acct, err := l.Account(a.ID, "people")
	if err != nil || acct.Budget != 1 || acct.Spent != 0 {
		t.Fatalf("fresh account %+v, %v", acct, err)
	}

	if err := l.Charge(a.ID, "people", g(0.6)); err != nil {
		t.Fatal(err)
	}
	if err := l.Charge(a.ID, "people", g(0.6)); !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("over-budget charge: got %v, want ErrBudgetExceeded", err)
	}
	// Datasets have independent accounts.
	if err := l.Charge(a.ID, "other", g(0.9)); err != nil {
		t.Fatalf("independent dataset account: %v", err)
	}

	// Refund reopens headroom; double refund fails and changes nothing.
	if err := l.Refund(a.ID, "people", g(0.6)); err != nil {
		t.Fatal(err)
	}
	if err := l.Refund(a.ID, "people", g(0.6)); err == nil {
		t.Fatal("double refund should fail")
	}
	if err := l.Charge(a.ID, "people", g(0.8)); err != nil {
		t.Fatalf("charge after refund: %v", err)
	}

	// Explicit grant overrides the default; lowering below spent just
	// freezes the account.
	if err := l.SetBudget(a.ID, "people", 0.5); err != nil {
		t.Fatal(err)
	}
	acct, err = l.Account(a.ID, "people")
	if err != nil || acct.Budget != 0.5 || math.Abs(acct.Spent-0.8) > 1e-12 || acct.Remaining != 0 {
		t.Fatalf("frozen account %+v, %v", acct, err)
	}
	if err := l.Charge(a.ID, "people", g(0.01)); !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("charge on frozen account: got %v, want ErrBudgetExceeded", err)
	}
	// Raising it reopens headroom without touching history.
	if err := l.SetBudget(a.ID, "people", 2); err != nil {
		t.Fatal(err)
	}
	if err := l.Charge(a.ID, "people", g(1.0)); err != nil {
		t.Fatalf("charge after raise: %v", err)
	}

	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if err := l.SetBudget(a.ID, "people", bad); err == nil {
			t.Fatalf("budget %v should be rejected", bad)
		}
	}
	if err := l.SetBudget("a-nope", "people", 1); !errors.Is(err, ErrUnknownAnalyst) {
		t.Fatalf("grant to unknown analyst: got %v, want ErrUnknownAnalyst", err)
	}
	if err := l.Charge("a-nope", "people", g(0.1)); !errors.Is(err, ErrUnknownAnalyst) {
		t.Fatalf("charge for unknown analyst: got %v, want ErrUnknownAnalyst", err)
	}

	accounts := l.Accounts()
	if len(accounts) != 2 {
		t.Fatalf("%d accounts, want 2", len(accounts))
	}
	if total := l.TotalSpent(); math.Abs(total-(0.8+1.0+0.9)) > 1e-9 {
		t.Fatalf("total spent %g, want 2.7", total)
	}
}

// TestConcurrentChargesNeverOverspend hammers one account from many
// goroutines; under -race this also proves the locking discipline.
func TestConcurrentChargesNeverOverspend(t *testing.T) {
	l := mem(t, Config{DefaultBudget: 2})
	a, _, err := l.CreateAnalyst("alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	const workers, rounds = 16, 25
	const eps = 0.01 // demand 16*25*0.01 = 4.0 >> budget 2
	var wg sync.WaitGroup
	var accepted, rejected int64
	var mu sync.Mutex
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				err := l.Charge(a.ID, "d", g(eps))
				mu.Lock()
				switch {
				case err == nil:
					accepted++
				case errors.Is(err, core.ErrBudgetExceeded):
					rejected++
				default:
					t.Errorf("unexpected charge error: %v", err)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	acct, err := l.Account(a.ID, "d")
	if err != nil {
		t.Fatal(err)
	}
	if acct.Spent > 2+1e-9 {
		t.Fatalf("over-spent: %g > 2", acct.Spent)
	}
	if want := float64(accepted) * eps; math.Abs(acct.Spent-want) > 1e-9 {
		t.Fatalf("spent %g but %d accepted charges total %g", acct.Spent, accepted, want)
	}
	if rejected == 0 {
		t.Fatal("expected rejections over budget")
	}
}

// TestChargeAllocsConstant pins the satellite requirement: the charge
// path stays O(1) allocations — a constant per call, independent of how
// much history the account carries — in both memory and WAL modes.
func TestChargeAllocsConstant(t *testing.T) {
	for _, mode := range []string{"memory", "wal"} {
		t.Run(mode, func(t *testing.T) {
			cfg := Config{NoSync: true} // fsync costs time, not allocs
			if mode == "wal" {
				cfg.Dir = t.TempDir()
			}
			l := mem(t, cfg)
			a, _, err := l.CreateAnalyst("alice", 0)
			if err != nil {
				t.Fatal(err)
			}
			charge := g(1e-7)
			measure := func() float64 {
				return testing.AllocsPerRun(200, func() {
					if err := l.Charge(a.ID, "d", charge); err != nil {
						t.Fatal(err)
					}
				})
			}
			cold := measure()
			// Pile on history, then measure again: the per-charge cost
			// must not grow with the account's charge count.
			for i := 0; i < 20000; i++ {
				if err := l.Charge(a.ID, "d", charge); err != nil {
					t.Fatal(err)
				}
			}
			warm := measure()
			if warm > cold+2 {
				t.Fatalf("charge allocations grew with history: %.1f cold vs %.1f warm", cold, warm)
			}
			if warm > 12 {
				t.Fatalf("charge path allocates %.1f/op, want O(1) small", warm)
			}
		})
	}
}

func TestClosedLedgerRefusesEverything(t *testing.T) {
	l := mem(t, Config{})
	a, _, err := l.CreateAnalyst("alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.CreateAnalyst("bob", 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("create on closed: got %v, want ErrClosed", err)
	}
	if err := l.Charge(a.ID, "d", g(0.1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("charge on closed: got %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
