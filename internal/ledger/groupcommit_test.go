package ledger

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"osdp/internal/telemetry"
)

// TestGroupCommitStressExactSpend hammers a durable ledger with 64
// goroutines of interleaved Charge/Refund/Account traffic that crosses
// several snapshot compactions, then pins the EXACT final spend and
// charge count per account. Run under -race this is the group-commit
// concurrency gate: writers mutate under the mutex, the committer
// drains outside it, and nothing may be lost or double-applied.
func TestGroupCommitStressExactSpend(t *testing.T) {
	reg := telemetry.NewRegistry()
	l, err := Open(Config{
		Dir:    t.TempDir(),
		NoSync: true, // fsync cost would dominate; batching logic is identical
		// Prime number well below the traffic volume so compaction fires
		// repeatedly mid-stress, at unaligned points.
		SnapshotEvery: 97,
		Telemetry:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	info, _, err := l.CreateAnalyst("stress", 0)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 64
	const rounds = 50
	type tally struct {
		spent   float64
		charges uint64
	}
	var refundsOK atomic.Uint64
	tallies := make([]tally, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ds := fmt.Sprintf("ds%02d", w)
			eps := 0.001 * float64(w%7+1)
			for r := 0; r < rounds; r++ {
				if err := l.Charge(info.ID, ds, g(eps)); err != nil {
					t.Errorf("worker %d charge %d: %v", w, r, err)
					return
				}
				tallies[w].spent += eps
				tallies[w].charges++
				if r%3 == 2 {
					// A concurrent compaction may have folded the charge
					// into an aggregate the matcher cannot see; then the
					// charge stands — the documented safe direction.
					if err := l.Refund(info.ID, ds, g(eps)); err == nil {
						tallies[w].spent -= eps
						refundsOK.Add(1)
					}
				}
				if r%5 == 4 {
					if _, err := l.Account(info.ID, ds); err != nil {
						t.Errorf("worker %d account: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	for w := 0; w < workers; w++ {
		ds := fmt.Sprintf("ds%02d", w)
		acct, err := l.Account(info.ID, ds)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(acct.Spent-tallies[w].spent) > 1e-9 {
			t.Errorf("account %s spent %.12f, want %.12f", ds, acct.Spent, tallies[w].spent)
		}
		if acct.Charges != tallies[w].charges {
			t.Errorf("account %s charges %d, want %d", ds, acct.Charges, tallies[w].charges)
		}
	}
	if got := metricValue(t, reg, "osdp_ledger_refunds_total"); got != float64(refundsOK.Load()) {
		t.Errorf("refunds metric %v, want %d (only durable refunds may count)", got, refundsOK.Load())
	}

	// Replayed state may only OVER-count relative to live memory (a
	// refund dropped by compaction), never under.
	liveTotal := l.TotalSpent()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(Config{Dir: l.cfg.Dir, NoSync: true, SnapshotEvery: 97})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if replayed := l2.TotalSpent(); replayed < liveTotal-1e-9 {
		t.Errorf("replay under-counts: %.12f live, %.12f replayed", liveTotal, replayed)
	}
}

// metricValue reads one unlabelled counter back out of the registry's
// Prometheus exposition.
func metricValue(t *testing.T, reg *telemetry.Registry, name string) float64 {
	t.Helper()
	var buf writerBuf
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range buf.lines() {
		var v float64
		if n, _ := fmt.Sscanf(line, name+" %f", &v); n == 1 {
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition", name)
	return 0
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }

func (w *writerBuf) lines() []string {
	var out []string
	start := 0
	for i, c := range w.b {
		if c == '\n' {
			out = append(out, string(w.b[start:i]))
			start = i + 1
		}
	}
	return out
}

// TestBatchFailureUndoesSpend sabotages the WAL file handle under
// concurrent chargers and asserts the failure contract: every waiter in
// the failed batch gets a non-nil error AND its in-memory spend undone;
// a refund whose batch fails keeps its in-memory effect (and is not
// counted in the refunds metric); replay never under-counts what was
// acknowledged before the sabotage.
func TestBatchFailureUndoesSpend(t *testing.T) {
	reg := telemetry.NewRegistry()
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, NoSync: true, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	info, _, err := l.CreateAnalyst("victim", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Charge(info.ID, "d", g(0.5)); err != nil {
		t.Fatal(err)
	}

	// The committer is idle (the charge above was acknowledged), so the
	// handle swap below cannot race a write in flight. Closing the file
	// makes the next batch's write fail, which must fail every charge
	// that rode it.
	if err := l.w.f.Close(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var failed atomic.Uint64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Charge(info.ID, "d", g(0.01)); err != nil {
				failed.Add(1)
			}
		}()
	}
	wg.Wait()
	if failed.Load() != 8 {
		t.Fatalf("%d of 8 charges on a sabotaged WAL failed; want all 8", failed.Load())
	}
	acct, err := l.Account(info.ID, "d")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acct.Spent-0.5) > 1e-12 || acct.Charges != 1 {
		t.Fatalf("failed batch leaked spend: spent %.12f charges %d, want 0.5 and 1", acct.Spent, acct.Charges)
	}
	if got := metricValue(t, reg, "osdp_ledger_charges_total"); got != 1 {
		t.Fatalf("charges metric %v, want 1 (failed batch must not count)", got)
	}

	// A refund that cannot persist keeps its in-memory effect — the
	// replayed state then over-counts, never under — and must not bump
	// the refunds metric.
	if err := l.Refund(info.ID, "d", g(0.5)); err == nil {
		t.Fatal("refund on a sabotaged WAL must report the durability failure")
	}
	if total := l.TotalSpent(); total > 1e-12 {
		t.Fatalf("in-memory refund must stand after durable failure; total spent %v", total)
	}
	if got := metricValue(t, reg, "osdp_ledger_refunds_total"); got != 0 {
		t.Fatalf("refunds metric %v, want 0 (refund batch failed)", got)
	}

	// Replay sees the acknowledged 0.5 charge; the failed refund never
	// reached the log, so the charge stands — an over-count vs the live
	// in-memory state, which is the safe direction.
	l.Close()
	l2, err := Open(Config{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if total := l2.TotalSpent(); math.Abs(total-0.5) > 1e-12 {
		t.Fatalf("replayed total %v, want 0.5 (acknowledged charge must survive)", total)
	}
}

// TestBatchWindowCoalesces opens a window so concurrent charges land in
// shared batches, then reads the batching evidence back out of the
// telemetry: total records committed must equal the histogram's sum,
// across strictly fewer batches than records — i.e. group commit
// actually grouped.
func TestBatchWindowCoalesces(t *testing.T) {
	reg := telemetry.NewRegistry()
	l, err := Open(Config{
		Dir:              t.TempDir(),
		NoSync:           true,
		FsyncBatchWindow: 5 * time.Millisecond,
		Telemetry:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	info, _, err := l.CreateAnalyst("batcher", 0)
	if err != nil {
		t.Fatal(err)
	}

	const chargers = 16
	var wg sync.WaitGroup
	for i := 0; i < chargers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := l.Charge(info.ID, fmt.Sprintf("d%d", i), g(0.01)); err != nil {
				t.Errorf("charge %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// +1 record for the CreateAnalyst append.
	h := reg.NewHistogram("osdp_ledger_fsync_batch_records", "", nil)
	if got, want := h.Sum(), float64(chargers+1); got != want {
		t.Fatalf("batch-size histogram sum %v, want %v records", got, want)
	}
	if batches := h.Count(); batches >= chargers+1 {
		t.Fatalf("%d batches for %d records — group commit never coalesced", batches, chargers+1)
	}
	waits := reg.NewHistogram("osdp_ledger_group_commit_wait_seconds", "", nil)
	if waits.Count() == 0 {
		t.Fatal("group-commit wait histogram recorded nothing")
	}
}
