package dpbench

import (
	"math"
	"math/rand"

	"osdp/internal/histogram"
	"osdp/internal/noise"
)

// This file implements the opt-in/opt-out policy simulators of §6.1.2.
// Both take the true histogram x and a non-sensitive ratio ρx and return
// xns with ‖xns‖₁ ≈ ρx·‖x‖₁ and xns ≤ x bin-wise (non-sensitive records
// are a subset of the data, so the full histogram always dominates).

// MSampling draws the "Close" policy: each record opts in independently
// with probability ρx, so the non-sensitive histogram's empirical
// distribution matches the full data's. theta is the shape tolerance —
// the sample is redrawn (up to a bounded number of retries) until its
// mean and standard deviation land within 1±theta of the ρx-scaled
// statistics of x; the paper uses theta = 0.1.
func MSampling(x *histogram.Histogram, rho, theta float64, rng *rand.Rand) *histogram.Histogram {
	checkRho(rho)
	wantMean, wantStd := scaledStats(x, rho)
	var out *histogram.Histogram
	for attempt := 0; attempt < 50; attempt++ {
		out = binomialThin(x, rho, rng)
		m, sd := stats(out)
		if within(m, wantMean, theta) && within(sd, wantStd, theta) {
			return out
		}
	}
	return out // extremely unlikely with theta=0.1; return the last draw
}

// HiLoSampling draws the "Far" policy: it picks a random centre bin b,
// declares the window b ± DomainSize·beta the "High" region, and samples
// non-sensitive records with weight gamma inside the region and 1 outside.
// High gamma and small beta make xns maximally dissimilar from x; the
// paper uses gamma = 5, beta = 0.4.
func HiLoSampling(x *histogram.Histogram, rho, gamma, beta float64, rng *rand.Rand) *histogram.Histogram {
	checkRho(rho)
	if gamma < 1 {
		panic("dpbench: gamma must be >= 1")
	}
	if beta <= 0 || beta > 1 {
		panic("dpbench: beta must lie in (0, 1]")
	}
	d := x.Bins()
	b := rng.Intn(d)
	half := int(float64(d) * beta)
	inHigh := func(i int) bool {
		lo, hi := b-half, b+half
		return i >= lo && i <= hi
	}

	target := int(math.Round(rho * x.Scale()))
	// Capped proportional allocation: weight each bin, allocate the target
	// proportionally, cap at the true count, and redistribute leftovers
	// among uncapped bins until the target is met.
	weights := make([]float64, d)
	for i := 0; i < d; i++ {
		w := x.Count(i)
		if inHigh(i) {
			w *= gamma
		}
		weights[i] = w
	}
	alloc := cappedProportional(x, weights, target, rng)
	out := histogram.New(d)
	for i, a := range alloc {
		out.SetCount(i, float64(a))
	}
	return out
}

// binomialThin samples Binomial(x_i, rho) per bin, with a Gaussian
// approximation above a variance threshold for speed at DPBench scales
// (tens of millions of records).
func binomialThin(x *histogram.Histogram, rho float64, rng *rand.Rand) *histogram.Histogram {
	out := histogram.New(x.Bins())
	for i := 0; i < x.Bins(); i++ {
		n := int(x.Count(i))
		if n == 0 {
			continue
		}
		out.SetCount(i, float64(binomial(n, rho, rng)))
	}
	return out
}

func binomial(n int, p float64, rng *rand.Rand) int {
	return noise.Binomial(rng, n, p)
}

// cappedProportional allocates target units across bins proportionally to
// weights, capping each bin at its true count and redistributing the
// overflow. Fractional remainders are resolved by randomised rounding that
// preserves the exact target where feasible.
func cappedProportional(x *histogram.Histogram, weights []float64, target int, rng *rand.Rand) []int {
	d := x.Bins()
	alloc := make([]float64, d)
	capped := make([]bool, d)
	remaining := float64(target)
	for pass := 0; pass < 64 && remaining > 1e-9; pass++ {
		var wsum float64
		for i := 0; i < d; i++ {
			if !capped[i] {
				wsum += weights[i]
			}
		}
		if wsum == 0 {
			break
		}
		progressed := false
		for i := 0; i < d; i++ {
			if capped[i] || weights[i] == 0 {
				continue
			}
			grant := remaining * weights[i] / wsum
			room := x.Count(i) - alloc[i]
			if grant >= room {
				grant = room
				capped[i] = true
			}
			if grant > 0 {
				alloc[i] += grant
				progressed = true
			}
		}
		var used float64
		for _, a := range alloc {
			used += a
		}
		remaining = float64(target) - used
		if !progressed {
			break
		}
	}
	// Integerise with largest-remainder rounding, respecting caps.
	out := make([]int, d)
	sum := 0
	type frac struct {
		i int
		f float64
	}
	var fracs []frac
	for i, a := range alloc {
		out[i] = int(math.Floor(a))
		sum += out[i]
		if out[i] < int(x.Count(i)) {
			fracs = append(fracs, frac{i, a - math.Floor(a)})
		}
	}
	need := target - sum
	rng.Shuffle(len(fracs), func(a, b int) { fracs[a], fracs[b] = fracs[b], fracs[a] })
	// Stable-sort by fractional part descending after the shuffle so ties
	// break randomly.
	for i := 1; i < len(fracs); i++ {
		for j := i; j > 0 && fracs[j-1].f < fracs[j].f; j-- {
			fracs[j-1], fracs[j] = fracs[j], fracs[j-1]
		}
	}
	for _, fr := range fracs {
		if need <= 0 {
			break
		}
		if out[fr.i] < int(x.Count(fr.i)) {
			out[fr.i]++
			need--
		}
	}
	return out
}

func checkRho(rho float64) {
	if rho <= 0 || rho > 1 {
		panic("dpbench: rho must lie in (0, 1]")
	}
}

func stats(h *histogram.Histogram) (mean, std float64) {
	d := float64(h.Bins())
	mean = h.Scale() / d
	var v float64
	for i := 0; i < h.Bins(); i++ {
		diff := h.Count(i) - mean
		v += diff * diff
	}
	return mean, math.Sqrt(v / d)
}

func scaledStats(x *histogram.Histogram, rho float64) (mean, std float64) {
	m, sd := stats(x)
	return m * rho, sd * rho
}

func within(got, want, theta float64) bool {
	if want == 0 {
		return got == 0
	}
	return got >= want*(1-theta) && got <= want*(1+theta)
}
