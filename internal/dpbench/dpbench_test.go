package dpbench

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"osdp/internal/histogram"
)

func TestSpecsMatchTable2(t *testing.T) {
	specs := Specs()
	if len(specs) != 7 {
		t.Fatalf("expected 7 datasets, got %d", len(specs))
	}
	for _, s := range specs {
		h := s.Generate(1)
		if h.Bins() != DomainSize {
			t.Fatalf("%s: %d bins", s.Name, h.Bins())
		}
		if got := int(h.Scale()); got != s.Scale {
			t.Errorf("%s: scale %d, want %d", s.Name, got, s.Scale)
		}
		if got := h.Sparsity(); math.Abs(got-s.Sparsity) > 0.01 {
			t.Errorf("%s: sparsity %v, want %v", s.Name, got, s.Sparsity)
		}
		// Integer, non-negative counts.
		for i := 0; i < h.Bins(); i++ {
			c := h.Count(i)
			if c < 0 || c != math.Trunc(c) {
				t.Fatalf("%s: bin %d count %v not a non-negative integer", s.Name, i, c)
			}
		}
	}
}

func TestSpecByName(t *testing.T) {
	s, err := SpecByName("Patent")
	if err != nil || s.Name != "Patent" {
		t.Fatalf("SpecByName(Patent) = %v, %v", s, err)
	}
	if _, err := SpecByName("Nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestNettraceIsSorted(t *testing.T) {
	s, _ := SpecByName("Nettrace")
	h := s.Generate(2)
	// Non-zero counts must be non-increasing over ascending positions.
	last := math.Inf(1)
	for i := 0; i < h.Bins(); i++ {
		if c := h.Count(i); c > 0 {
			if c > last {
				t.Fatalf("Nettrace not sorted at bin %d: %v after %v", i, c, last)
			}
			last = c
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	s, _ := SpecByName("Adult")
	a, b := s.Generate(7), s.Generate(7)
	if a.L1Distance(b) != 0 {
		t.Error("same seed produced different data")
	}
	c := s.Generate(8)
	if a.L1Distance(c) == 0 {
		t.Error("different seeds produced identical data")
	}
}

func TestZipfCountsExact(t *testing.T) {
	counts := zipfCounts(10, 1000, 1.0)
	sum := 0
	for _, c := range counts {
		if c < 1 {
			t.Fatalf("count %d below 1", c)
		}
		sum += c
	}
	if sum != 1000 {
		t.Errorf("sum = %d", sum)
	}
	// Heavy head.
	if counts[0] <= counts[len(counts)-1] {
		t.Error("zipf counts not decreasing head to tail")
	}
}

func TestMSamplingCloseShape(t *testing.T) {
	s, _ := SpecByName("Hepth")
	x := s.Generate(3)
	rng := rand.New(rand.NewSource(4))
	for _, rho := range []float64{0.99, 0.5, 0.1} {
		xns := MSampling(x, rho, 0.1, rng)
		if !x.Dominates(xns) {
			t.Fatalf("rho=%v: xns exceeds x somewhere", rho)
		}
		ratio := xns.Scale() / x.Scale()
		if math.Abs(ratio-rho) > 0.02 {
			t.Errorf("rho=%v: mass ratio %v", rho, ratio)
		}
		// Close policy: shape similar — correlation of the two count
		// vectors should be high.
		if corr := pearson(x, xns); corr < 0.95 {
			t.Errorf("rho=%v: shape correlation %v, want close to 1", rho, corr)
		}
	}
}

func TestHiLoSamplingFarShape(t *testing.T) {
	s, _ := SpecByName("Patent") // dense dataset shows the High/Low contrast
	x := s.Generate(5)
	rng := rand.New(rand.NewSource(6))
	xns := HiLoSampling(x, 0.25, 5, 0.2, rng)
	if !x.Dominates(xns) {
		t.Fatal("xns exceeds x somewhere")
	}
	ratio := xns.Scale() / x.Scale()
	if math.Abs(ratio-0.25) > 0.02 {
		t.Errorf("mass ratio %v, want ~0.25", ratio)
	}
	// Far policy: the sample's shape should track x noticeably worse than a
	// Close sample of the same rho.
	close := MSampling(x, 0.25, 0.1, rand.New(rand.NewSource(7)))
	if pearson(x, xns) >= pearson(x, close) {
		t.Errorf("Far correlation %v not below Close correlation %v",
			pearson(x, xns), pearson(x, close))
	}
}

func pearson(a, b *histogram.Histogram) float64 {
	n := float64(a.Bins())
	ma, mb := a.Scale()/n, b.Scale()/n
	var num, da, db float64
	for i := 0; i < a.Bins(); i++ {
		xa, xb := a.Count(i)-ma, b.Count(i)-mb
		num += xa * xb
		da += xa * xa
		db += xb * xb
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}

func TestSamplingPanics(t *testing.T) {
	x := histogram.FromCounts([]float64{1, 2})
	rng := rand.New(rand.NewSource(1))
	for _, f := range []func(){
		func() { MSampling(x, 0, 0.1, rng) },
		func() { MSampling(x, 1.5, 0.1, rng) },
		func() { HiLoSampling(x, 0.5, 0.5, 0.4, rng) }, // gamma < 1
		func() { HiLoSampling(x, 0.5, 5, 0, rng) },     // beta = 0
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBinomialSmallAndLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Exact path.
	const trials = 20000
	sum := 0
	for i := 0; i < trials; i++ {
		sum += binomial(10, 0.3, rng)
	}
	if mean := float64(sum) / trials; math.Abs(mean-3) > 0.1 {
		t.Errorf("small binomial mean %v, want ~3", mean)
	}
	// Gaussian path.
	sum = 0
	for i := 0; i < trials; i++ {
		k := binomial(100000, 0.5, rng)
		if k < 0 || k > 100000 {
			t.Fatalf("binomial out of range: %d", k)
		}
		sum += k
	}
	if mean := float64(sum) / trials; math.Abs(mean-50000) > 100 {
		t.Errorf("large binomial mean %v, want ~50000", mean)
	}
	// Edges.
	if binomial(10, 0, rng) != 0 || binomial(10, 1, rng) != 10 {
		t.Error("binomial edge probabilities wrong")
	}
}

func TestCappedProportionalRespectsCapsAndTarget(t *testing.T) {
	x := histogram.FromCounts([]float64{10, 10, 10, 10})
	w := []float64{100, 1, 1, 1} // bin 0 wants everything but caps at 10
	rng := rand.New(rand.NewSource(9))
	alloc := cappedProportional(x, w, 25, rng)
	sum := 0
	for i, a := range alloc {
		if float64(a) > x.Count(i) {
			t.Fatalf("bin %d allocated %d above cap %v", i, a, x.Count(i))
		}
		sum += a
	}
	if sum != 25 {
		t.Errorf("allocated %d, want 25", sum)
	}
	if alloc[0] != 10 {
		t.Errorf("heavy bin allocation %d, want capped 10", alloc[0])
	}
}

// Property: both samplers always produce sub-histograms with the right mass
// for random inputs.
func TestSamplersSubHistogramQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := func(seed uint8, rhoRaw uint8) bool {
		d := 64
		x := histogram.New(d)
		r := rand.New(rand.NewSource(int64(seed)))
		for i := 0; i < d; i++ {
			if r.Intn(3) > 0 {
				x.SetCount(i, float64(r.Intn(500)))
			}
		}
		if x.Scale() == 0 {
			return true
		}
		rho := float64(rhoRaw%90+5) / 100
		m := MSampling(x, rho, 0.5, rng) // loose theta: accept first draw shape
		if !x.Dominates(m) {
			return false
		}
		h := HiLoSampling(x, rho, 5, 0.4, rng)
		if !x.Dominates(h) {
			return false
		}
		// HiLo hits the target mass exactly when feasible.
		want := math.Round(rho * x.Scale())
		return math.Abs(h.Scale()-want) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
