// Package dpbench synthesises the DPBench-1D benchmark of the paper's
// evaluation (§6.1.2): seven 1-dimensional histograms over a categorical
// domain of size 4096, matching the published per-dataset sparsity and
// scale (Table 2) and qualitative shape (e.g. Nettrace is a sorted
// histogram; Patent is dense). The raw microdata behind the original
// benchmark is not distributable, but the OSDP-vs-DP comparisons depend
// only on these histogram statistics — see DESIGN.md's substitution notes.
//
// The package also implements the two biased policy samplers that simulate
// opt-in/opt-out behaviour: MSampling (the "Close" policy — non-sensitive
// records distributed like the full data) and HiLoSampling (the "Far"
// policy — non-sensitive records concentrated in a region, simulating
// strong correlation between privacy preference and record value).
package dpbench

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"osdp/internal/histogram"
)

// DomainSize is the number of histogram bins in every benchmark dataset.
const DomainSize = 4096

// Spec describes one benchmark dataset's published statistics and the
// shape knobs used to synthesise it.
type Spec struct {
	// Name is the dataset name from Table 2.
	Name string
	// Sparsity is the target fraction of zero bins.
	Sparsity float64
	// Scale is the target total record count ‖x‖₁.
	Scale int
	// zipf is the Zipf exponent shaping the non-zero counts.
	zipf float64
	// sorted lays the counts out in descending order (Nettrace).
	sorted bool
	// clustered packs the non-zero bins into contiguous runs instead of
	// scattering them, giving the smoother profile of dense datasets.
	clustered bool
}

// Specs returns the seven benchmark datasets in Table 2 order.
func Specs() []Spec {
	return []Spec{
		{Name: "Adult", Sparsity: 0.98, Scale: 17_665, zipf: 1.6},
		{Name: "Hepth", Sparsity: 0.21, Scale: 347_414, zipf: 0.9, clustered: true},
		{Name: "Income", Sparsity: 0.45, Scale: 20_787_122, zipf: 1.0, clustered: true},
		{Name: "Nettrace", Sparsity: 0.97, Scale: 25_714, zipf: 1.5, sorted: true},
		{Name: "Medcost", Sparsity: 0.75, Scale: 9_415, zipf: 1.4},
		{Name: "Patent", Sparsity: 0.06, Scale: 27_948_226, zipf: 0.7, clustered: true},
		{Name: "Searchlogs", Sparsity: 0.51, Scale: 335_889, zipf: 1.0, clustered: true},
	}
}

// SpecByName returns the named spec.
func SpecByName(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dpbench: unknown dataset %q", name)
}

// Generate synthesises the dataset: exactly round((1−sparsity)·4096)
// non-zero integer bins summing exactly to Scale, shaped by the Zipf
// exponent and laid out per the spec.
func (s Spec) Generate(seed int64) *histogram.Histogram {
	rng := rand.New(rand.NewSource(seed))
	nonZero := int(math.Round((1 - s.Sparsity) * DomainSize))
	if nonZero < 1 {
		nonZero = 1
	}
	if nonZero > DomainSize {
		nonZero = DomainSize
	}
	counts := zipfCounts(nonZero, s.Scale, s.zipf)

	h := histogram.New(DomainSize)
	positions := s.layout(nonZero, rng)
	if s.sorted {
		// Descending counts over ascending positions = sorted histogram.
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		sort.Ints(positions)
	} else {
		rng.Shuffle(len(counts), func(i, j int) { counts[i], counts[j] = counts[j], counts[i] })
	}
	for i, pos := range positions {
		h.SetCount(pos, float64(counts[i]))
	}
	return h
}

// layout picks the non-zero bin positions. Sorted histograms occupy a
// contiguous prefix (the zero tail is one long run, which DAWA merges
// cheaply — the property behind Nettrace's regret drop in Figure 9);
// clustered datasets pack the support into a few contiguous runs; the
// rest scatter it, making the zero bins expensive for symmetric-noise DP
// mechanisms.
func (s Spec) layout(nonZero int, rng *rand.Rand) []int {
	if s.sorted {
		out := make([]int, nonZero)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if s.clustered {
		// A handful of contiguous runs starting at random offsets.
		runs := 4
		out := make([]int, 0, nonZero)
		per := nonZero / runs
		used := make(map[int]bool, nonZero)
		for r := 0; r < runs; r++ {
			n := per
			if r == runs-1 {
				n = nonZero - len(out)
			}
			start := rng.Intn(DomainSize)
			for i := 0; i < n; i++ {
				pos := (start + i) % DomainSize
				for used[pos] {
					pos = (pos + 1) % DomainSize
				}
				used[pos] = true
				out = append(out, pos)
			}
		}
		return out
	}
	return rng.Perm(DomainSize)[:nonZero]
}

// zipfCounts distributes total over n bins proportionally to 1/(rank+1)^s,
// with every bin at least 1 and the sum exactly total.
func zipfCounts(n, total int, s float64) []int {
	if total < n {
		total = n // degenerate; keep every bin non-zero
	}
	weights := make([]float64, n)
	var wsum float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), s)
		wsum += weights[i]
	}
	counts := make([]int, n)
	assigned := 0
	for i := range counts {
		counts[i] = 1 + int(float64(total-n)*weights[i]/wsum)
		assigned += counts[i]
	}
	// Fix rounding drift on the heaviest bin.
	counts[0] += total - assigned
	if counts[0] < 1 {
		counts[0] = 1
	}
	return counts
}
