// Package osdp's root-level benchmark harness: one testing.B benchmark per
// table and figure of the paper (regenerating the artifact end to end on a
// reduced configuration), the ablations called out in DESIGN.md, and
// micro-benchmarks of the individual mechanisms. Run with
//
//	go test -bench=. -benchmem
//
// and use -v to see each regenerated table via b.Logf. cmd/osdp-bench runs
// the full-scale versions and prints the complete series.
package osdp

import (
	"fmt"
	"sync"
	"testing"

	"osdp/internal/core"
	"osdp/internal/dataset"
	"osdp/internal/dawa"
	"osdp/internal/dpbench"
	"osdp/internal/experiments"
	"osdp/internal/histogram"
	"osdp/internal/mechanism"
	"osdp/internal/noise"
	"osdp/internal/server"
)

// benchConfig is the reduced configuration used by the figure benchmarks:
// one trial per measurement, small corpus, all policy points.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Trials = 1
	cfg.Tippers.Users = 250
	cfg.Tippers.Days = 12
	cfg.CVFolds = 3
	cfg.Epochs = 40
	cfg.PolicyShares = []float64{0.99, 0.75, 0.50, 0.25}
	cfg.NSRatios = []float64{0.99, 0.50, 0.25}
	return cfg
}

func logOnce(b *testing.B, i int, r *experiments.Report) {
	if i == 0 {
		b.Logf("\n%s", r.String())
	}
}

func BenchmarkTable1_OsdpRRKeepRate(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Table1(cfg, 100000))
	}
}

func BenchmarkTable2_DPBenchStats(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Table2(cfg))
	}
}

func BenchmarkFigure1_Classification(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Figure1(cfg, 1.0))
	}
}

func BenchmarkFigure2_4grams(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.FigureNGrams(cfg, 4, 1.0))
	}
}

func BenchmarkFigure3_5grams(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.FigureNGrams(cfg, 5, 1.0))
	}
}

func BenchmarkFigure4_Tippers2D(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Figure4(cfg, 1.0))
	}
}

func BenchmarkFigure5_TippersPerBin(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Figure5(cfg, 1.0))
	}
}

func BenchmarkFigure6_RegretBothPolicies(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Figure6(cfg, 1.0))
	}
}

func BenchmarkFigure7_RegretByPolicy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Figure78(cfg, 1.0, "MRE"))
	}
}

func BenchmarkFigure8_Rel95Regret(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Figure78(cfg, 1.0, "Rel95"))
	}
}

func BenchmarkFigure9_PerDataset(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Figure9(cfg, 1.0, 0.99))
	}
}

func BenchmarkFigure10_PDPComparison(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Figure10(cfg, 1.0))
	}
}

func BenchmarkAblation_RRvsLaplaceCrossover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.CrossoverReport())
	}
}

func BenchmarkAblation_ExclusionAttack(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.ExclusionExperiment(cfg, 20000))
	}
}

func BenchmarkAblation_DAWAzRho(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.DAWAzRhoSweep(cfg, 1.0, []float64{0.05, 0.1, 0.3}))
	}
}

func BenchmarkAblation_L1Postprocess(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.L1PostprocessAblation(cfg, 1.0))
	}
}

func BenchmarkAblation_ZeroSource(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.ZeroSourceAblation(cfg, 1.0))
	}
}

func BenchmarkAblation_TruncationK(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.TruncationSweep(cfg, 4, 1.0, 3))
	}
}

func BenchmarkExtension_RecipeGenerality(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.RecipeGeneralityReport(cfg, 1.0))
	}
}

func BenchmarkExtension_ConstraintClosure(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.ConstraintClosureReport(cfg))
	}
}

func BenchmarkExtension_PolicyLearning(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.PolicyLearningReport(cfg, []int{200, 1000}))
	}
}

func BenchmarkExtension_AGrid2D(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.AGrid2DReport(cfg, 1.0))
	}
}

func BenchmarkExtension_RangeWorkload(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.RangeWorkloadReport(cfg, 1.0, 100))
	}
}

func BenchmarkExtension_PrivBayes(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.PrivBayesReport(cfg, []float64{0.2}))
	}
}

// --- Data-plane benchmarks: row-oriented vs columnar execution. ---

const dataplaneRows = 1_000_000

var (
	dataplaneOnce  sync.Once
	dataplaneTable *dataset.Table
)

// dataplaneBenchTable builds the 1M-row table shared by the data-plane
// benchmarks: a 64-group string attribute, an int attribute for the WHERE
// condition, and a float payload.
func dataplaneBenchTable() *dataset.Table {
	dataplaneOnce.Do(func() {
		dataplaneTable = experiments.DataplaneTable(dataplaneRows, 64, 1)
	})
	return dataplaneTable
}

// BenchmarkRowVsColumnar runs the same filtered group-by count — the
// server's histogram hot path — through the row-at-a-time baseline
// (interface-dispatched predicate per record, string-keyed map grouping;
// the pre-columnar engine's algorithm, with its record slice hoisted out
// of the timed region like the old stored slice — see
// experiments.RowReferenceGroupCount for the caveats) and through the
// columnar engine (compiled predicate bitset + cached bin-id vector).
// The acceptance bar for the columnar data plane is >= 5x throughput on
// this workload.
func BenchmarkRowVsColumnar(b *testing.B) {
	tb := dataplaneBenchTable()
	where := experiments.DataplaneWhere()
	b.Run("row", func(b *testing.B) {
		rows := tb.Records() // hoisted: the old engine kept this slice stored
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			counts := experiments.RowReferenceGroupCount(tb, rows, where, "Group")
			if len(counts) == 0 {
				b.Fatal("empty result")
			}
		}
	})
	b.Run("columnar", func(b *testing.B) {
		q := histogram.NewQuery(where, histogram.DomainFromTable(tb, "Group"))
		q.Eval(tb) // warm the cached bin vector, as a serving registry would
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h := q.Eval(tb)
			if h.Scale() == 0 {
				b.Fatal("empty result")
			}
		}
	})
}

// BenchmarkServerHistogramQuery measures the full serving path (session
// lookup, artifact-cache hit, vectorized scan, OSDP noise) on the 1M-row
// table. Allocations must stay independent of the row count — no
// per-record map entries; see TestServerHistogramQueryAllocs for the
// enforced bound.
func BenchmarkServerHistogramQuery(b *testing.B) {
	tb := dataplaneBenchTable()
	srv := server.New(server.Config{AllowSeededSessions: true})
	if err := srv.RegisterTable("bench", tb, dataset.AllNonSensitive()); err != nil {
		b.Fatal(err)
	}
	seed := int64(7)
	si, err := srv.OpenSession("", server.OpenSessionRequest{Dataset: "bench", Budget: 0, Seed: &seed})
	if err != nil {
		b.Fatal(err)
	}
	req := server.QueryRequest{
		Kind: server.KindHistogram,
		Eps:  0.1,
		Dims: []server.DomainSpec{{Attr: "Group"}},
		Where: &server.PredicateSpec{
			Op: "cmp", Attr: "Age", Cmp: ">=", Value: float64(18),
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Query("", si.ID, req); err != nil {
			b.Fatal(err)
		}
	}
}

// TestServerHistogramQueryAllocs pins the "no per-record allocation"
// property of the serving path: allocations per histogram query must not
// grow with the table (a per-record map would add one entry per matching
// record). Compared across a 64x row-count spread with generous slack.
func TestServerHistogramQueryAllocs(t *testing.T) {
	allocsFor := func(rows int) float64 {
		tb := experiments.DataplaneTable(rows, 16, 2)
		srv := server.New(server.Config{AllowSeededSessions: true})
		if err := srv.RegisterTable("d", tb, dataset.AllNonSensitive()); err != nil {
			t.Fatal(err)
		}
		seed := int64(11)
		si, err := srv.OpenSession("", server.OpenSessionRequest{Dataset: "d", Budget: 0, Seed: &seed})
		if err != nil {
			t.Fatal(err)
		}
		req := server.QueryRequest{
			Kind: server.KindHistogram,
			Eps:  0.5,
			Dims: []server.DomainSpec{{Attr: "Group"}},
			Where: &server.PredicateSpec{
				Op: "cmp", Attr: "Age", Cmp: ">=", Value: float64(18),
			},
		}
		if _, err := srv.Query("", si.ID, req); err != nil { // warm caches
			t.Fatal(err)
		}
		return testing.AllocsPerRun(20, func() {
			if _, err := srv.Query("", si.ID, req); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := allocsFor(1000), allocsFor(64000)
	if large > small+64 {
		t.Errorf("allocations grew with table size: %v at 1k rows vs %v at 64k rows", small, large)
	}
	if large > 1000 {
		t.Errorf("histogram query allocates %v objects/op; per-record work has crept back in", large)
	}
}

// TestRowVsColumnarAgree guards the benchmark's two paths against
// divergence: identical counts, whatever the speed.
func TestRowVsColumnarAgree(t *testing.T) {
	tb := experiments.DataplaneTable(20000, 32, 3)
	where := experiments.DataplaneWhere()
	ref := experiments.RowReferenceGroupCount(tb, tb.Records(), where, "Group")
	q := histogram.NewQuery(where, histogram.DomainFromTable(tb, "Group"))
	h := q.Eval(tb)
	for i := 0; i < h.Bins(); i++ {
		label := h.Label(i)
		if int(h.Count(i)) != ref[label] {
			t.Fatalf("group %q: columnar %v vs row %d", label, h.Count(i), ref[label])
		}
	}
	total := 0
	for _, n := range ref {
		total += n
	}
	if int(h.Scale()) != total {
		t.Fatalf("mass mismatch: %v vs %d", h.Scale(), total)
	}
}

// --- Mechanism micro-benchmarks over the DPBench domain (4096 bins). ---

func benchHistogram() *histogram.Histogram {
	spec, err := dpbench.SpecByName("Adult")
	if err != nil {
		panic(err)
	}
	return spec.Generate(1)
}

func BenchmarkMechanism_LaplaceHistogram4096(b *testing.B) {
	x := benchHistogram()
	src := noise.NewSource(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mechanism.LaplaceHistogram(x, 1.0, src)
	}
}

func BenchmarkMechanism_OsdpLaplaceL1_4096(b *testing.B) {
	x := benchHistogram()
	src := noise.NewSource(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.OsdpLaplaceL1(x, 1.0, src)
	}
}

func BenchmarkMechanism_RRSampleHistogram4096(b *testing.B) {
	x := benchHistogram()
	src := noise.NewSource(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RRSampleHistogram(x, 1.0, src)
	}
}

func BenchmarkMechanism_DAWA4096(b *testing.B) {
	x := benchHistogram()
	src := noise.NewSource(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dawa.New().Estimate(x, 1.0, src)
	}
}

func BenchmarkMechanism_DAWAz4096(b *testing.B) {
	x := benchHistogram()
	src := noise.NewSource(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dawa.DAWAz(x, x, 1.0, 0.1, src)
	}
}

func BenchmarkNoise_Laplace(b *testing.B) {
	src := noise.NewSource(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		noise.Laplace(src, 1.0)
	}
}

func BenchmarkNoise_OneSidedLaplace(b *testing.B) {
	src := noise.NewSource(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		noise.OneSidedLaplace(src, 1.0)
	}
}

// BenchmarkParallelScan runs the filtered group-by scan (the same
// workload as BenchmarkRowVsColumnar's columnar arm) serially and
// sharded across the scan worker pool. The acceptance bar for the
// parallel data plane is >= 2x on this workload at 4+ workers on a
// machine with 4+ CPUs; on fewer CPUs the parallel arm measures pool
// overhead instead (speedup is bounded by min(workers, CPUs)).
// cmd/osdp-bench -parallel emits the same measurement as
// BENCH_parallel.json for CI.
func BenchmarkParallelScan(b *testing.B) {
	tb := dataplaneBenchTable()
	where := experiments.DataplaneWhere()
	q := histogram.NewQuery(where, histogram.DomainFromTable(tb, "Group"))
	prev := dataset.ScanWorkers()
	defer dataset.SetScanWorkers(prev)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			dataset.SetScanWorkers(workers)
			q.Eval(tb) // warm the cached bin vector, as a serving registry would
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h := q.Eval(tb)
				if h.Scale() == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

// TestParallelScanAllocs pins the parallel path's allocation discipline:
// per-query allocations are bounded per QUERY (pool dispatch, chunk
// scratch, per-worker partial histograms), never per row. Compared
// across a 4x spread of multi-chunk row counts with generous slack.
func TestParallelScanAllocs(t *testing.T) {
	prev := dataset.ScanWorkers()
	defer dataset.SetScanWorkers(prev)
	dataset.SetScanWorkers(8)
	allocsFor := func(rows int) float64 {
		tb := experiments.DataplaneTable(rows, 16, 2)
		where := experiments.DataplaneWhere()
		q := histogram.NewQuery(where, histogram.DomainFromTable(tb, "Group"))
		q.Eval(tb) // warm the bin vector
		return testing.AllocsPerRun(10, func() {
			if q.Eval(tb).Scale() == 0 {
				t.Fatal("empty result")
			}
		})
	}
	small, large := allocsFor(2*65536), allocsFor(8*65536)
	if large > small*2+64 {
		t.Errorf("parallel scan allocations grew with table size: %v at 128k rows vs %v at 512k rows", small, large)
	}
	if large > 2000 {
		t.Errorf("parallel scan allocates %v objects/op; per-row work has crept in", large)
	}
}

// TestParallelScanAgreesAtFullScale runs the differential guarantee at
// benchmark scale: the parallel scan must reproduce the serial scan
// bin for bin on the shared 1M-row table (the unit-level differential
// tests cover fuzzed shapes; this covers the real benchmark substrate).
func TestParallelScanAgreesAtFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row differential check is slow")
	}
	tb := dataplaneBenchTable()
	where := experiments.DataplaneWhere()
	q := histogram.NewQuery(where, histogram.DomainFromTable(tb, "Group"))
	prev := dataset.ScanWorkers()
	defer dataset.SetScanWorkers(prev)
	dataset.SetScanWorkers(1)
	serial := q.Eval(tb)
	dataset.SetScanWorkers(8)
	parallel := q.Eval(tb)
	for i := 0; i < serial.Bins(); i++ {
		if serial.Count(i) != parallel.Count(i) {
			t.Fatalf("bin %d: serial %v vs parallel %v", i, serial.Count(i), parallel.Count(i))
		}
	}
}
