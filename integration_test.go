package osdp

// Cross-module integration tests: each test exercises a full pipeline a
// downstream user would run, spanning several internal packages.

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"osdp/internal/classify"
	"osdp/internal/core"
	"osdp/internal/dataset"
	"osdp/internal/dawa"
	"osdp/internal/dpbench"
	"osdp/internal/histogram"
	"osdp/internal/metrics"
	"osdp/internal/noise"
	"osdp/internal/policylearn"
	"osdp/internal/tippers"
)

// CSV in → policy → budgeted session → OSDP answers → CSV out.
func TestPipelineCSVToSession(t *testing.T) {
	csv := "Name:string,Age:int,OptIn:bool\n"
	rng := rand.New(rand.NewSource(1))
	var sb strings.Builder
	sb.WriteString(csv)
	for i := 0; i < 400; i++ {
		age := rng.Intn(80)
		opt := "true"
		if rng.Float64() < 0.3 {
			opt = "false"
		}
		sb.WriteString("u")
		sb.WriteString(string(rune('a' + i%26)))
		sb.WriteString(",")
		sb.WriteString(itoa(age))
		sb.WriteString(",")
		sb.WriteString(opt)
		sb.WriteString("\n")
	}
	db, err := dataset.ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}

	policy := dataset.NewPolicy("gdpr", dataset.Or(
		dataset.Cmp("Age", dataset.OpLe, dataset.Int(17)),
		dataset.Cmp("OptIn", dataset.OpEq, dataset.Bool(false)),
	))
	sess := core.NewSession(db, policy, 2.0, noise.NewSource(2))

	q := histogram.NewQuery(nil, histogram.NewNumericDomain("Age", 0, 10, 8))
	est, err := sess.Histogram(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	_, ns := db.Split(policy)
	xns := q.Eval(ns)
	if mre := metrics.MRE(xns, est, 1); mre > 0.5 {
		t.Errorf("session histogram MRE vs xns = %v", mre)
	}

	sample, err := sess.Sample(1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sample.Records() {
		if policy.Sensitive(r) {
			t.Fatal("session sample leaked a sensitive record")
		}
	}
	// Release the sample as CSV and read it back.
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, sample); err != nil {
		t.Fatal(err)
	}
	again, err := dataset.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if again.Len() != sample.Len() {
		t.Errorf("CSV round trip lost records: %d vs %d", again.Len(), sample.Len())
	}
	if math.Abs(sess.Spent()-1.5) > 1e-12 {
		t.Errorf("session spent %v, want 1.5", sess.Spent())
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [4]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Trajectory corpus → AP policy → topology closure → OsdpRR release →
// n-gram analysis with Horvitz–Thompson debias.
func TestPipelineTrajectoriesToNGrams(t *testing.T) {
	cfg := tippers.DefaultConfig()
	cfg.Users = 300
	cfg.Days = 15
	corpus := tippers.Generate(cfg)
	policy := tippers.GridTopology().ClosePolicy(corpus.PolicyForShare(0.8))

	const eps = 1.0
	rng := rand.New(rand.NewSource(3))
	released := corpus.ReleaseRR(policy, eps, rng)
	truth := tippers.NGramCounts(corpus.Trajectories, 3)
	est := tippers.NGramCounts(released, 3)
	scale := 1 / noise.KeepProbability(eps)
	for k, v := range est {
		est[k] = v * scale
	}
	mre := metrics.SparseMRE(truth, est, tippers.NGramDomainSize(3), 1)
	// The release covers the non-sensitive share, so error is bounded by
	// roughly the sensitive share plus sampling noise.
	if mre > 0.01 {
		t.Errorf("pipeline 3-gram MRE = %v", mre)
	}
}

// Benchmark data → policy sampler → DAWAz → regret accounting.
func TestPipelineDPBenchToRegret(t *testing.T) {
	spec, err := dpbench.SpecByName("Nettrace")
	if err != nil {
		t.Fatal(err)
	}
	x := spec.Generate(7)
	rng := rand.New(rand.NewSource(4))
	xns := dpbench.MSampling(x, 0.9, 0.1, rng)
	src := noise.NewSource(5)

	rt := metrics.NewRegretTable("DAWA", "DAWAz")
	alg := dawa.New()
	var dwErr, dwzErr float64
	const trials = 5
	for i := 0; i < trials; i++ {
		est, _ := alg.Estimate(x, 1.0, src)
		dwErr += metrics.MRE(x, est, 1)
		dwzErr += metrics.MRE(x, dawa.DAWAz(x, xns, 1.0, 0.1, src), 1)
	}
	rt.Record("nettrace", "DAWA", dwErr/trials)
	rt.Record("nettrace", "DAWAz", dwzErr/trials)
	if rt.Regret("nettrace", "DAWAz") != 1 {
		t.Errorf("DAWAz should win on sparse sorted data; regrets: DAWA=%v DAWAz=%v",
			rt.Regret("nettrace", "DAWA"), rt.Regret("nettrace", "DAWAz"))
	}
}

// Labelled examples → learned policy → OSDP mechanism → empirical
// verification of the learned policy's guarantee.
func TestPipelineLearnedPolicyVerifies(t *testing.T) {
	s := dataset.NewSchema(
		dataset.Field{Name: "ID", Kind: dataset.KindInt},
		dataset.Field{Name: "Age", Kind: dataset.KindInt},
	)
	rng := rand.New(rand.NewSource(6))
	var examples []policylearn.Example
	for i := 0; i < 1200; i++ {
		age := int64(rng.Intn(80))
		rec := dataset.NewRecord(s, dataset.Int(int64(i)), dataset.Int(age))
		examples = append(examples, policylearn.Example{Record: rec, Sensitive: age <= 17})
	}
	lp, err := policylearn.Learn(examples, policylearn.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	policy := lp.AsPolicy("learned-minors")

	base := dataset.NewTable(s)
	base.Append(dataset.NewRecord(s, dataset.Int(0), dataset.Int(5))) // sensitive under both truth and learner
	base.Append(dataset.NewRecord(s, dataset.Int(1), dataset.Int(40)))
	universe := []dataset.Record{
		dataset.NewRecord(s, dataset.Int(0), dataset.Int(9)),
		dataset.NewRecord(s, dataset.Int(0), dataset.Int(55)),
	}
	const eps = 1.0
	res := core.VerifyOSDP(core.NewRR(policy, eps), base, policy, universe,
		core.VerifyConfig{Trials: 60000}, noise.NewSource(7))
	if res.Pairs == 0 {
		t.Fatal("learned policy produced no verifiable neighbors")
	}
	if res.MaxLogRatio > eps*1.1 {
		t.Errorf("mechanism under learned policy leaks: %v > ε (worst %s)", res.MaxLogRatio, res.WorstPair)
	}
}

// Corpus → features → OsdpRR release → classifier comparable to training
// on all non-sensitive data.
func TestPipelineReleaseToClassifier(t *testing.T) {
	cfg := tippers.DefaultConfig()
	cfg.Users = 300
	cfg.Days = 15
	corpus := tippers.Generate(cfg)
	policy := corpus.PolicyForShare(0.8)
	fs := tippers.NewFeatureSet(tippers.MineFrequentTrigrams(corpus.Trajectories, 40))
	rng := rand.New(rand.NewSource(8))

	released := corpus.ReleaseRR(policy, 1.0, rng)
	train := tippers.ClassificationDataset(released, fs)
	model, err := classify.Train(train, classify.DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	full := tippers.ClassificationDataset(corpus.Trajectories, fs)
	scores := make([]float64, full.Len())
	for i, x := range full.X {
		scores[i] = model.Prob(x)
	}
	if auc := classify.AUC(scores, full.Y); auc < 0.85 {
		t.Errorf("classifier trained on OSDP release has AUC %v", auc)
	}
}
