package osdp

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// TestExportedDocComments is the documentation lint CI runs: every
// exported top-level identifier in the documented-surface packages —
// the columnar data plane, the histogram substrate, and the serving
// layer (including the Go client) — must carry a doc comment, and the
// comment must start with the identifier's name per godoc convention.
// The packages' doc comments promise concurrency-safety notes; this
// lint keeps the surface from silently growing undocumented members.
func TestExportedDocComments(t *testing.T) {
	for _, dir := range []string{
		"internal/dataset",
		"internal/histogram",
		"internal/server",
	} {
		t.Run(dir, func(t *testing.T) {
			for _, problem := range lintPackageDocs(t, dir) {
				t.Error(problem)
			}
		})
	}
}

// lintPackageDocs parses one package directory (tests excluded) and
// returns a description of every exported declaration with a missing or
// malformed doc comment.
func lintPackageDocs(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing %s: %v", dir, err)
	}
	var problems []string
	report := func(pos token.Pos, format string, args ...any) {
		problems = append(problems, fmt.Sprintf("%s: %s", fset.Position(pos), fmt.Sprintf(format, args...)))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedReceiver(d) {
						continue
					}
					checkDoc(report, d.Pos(), d.Doc, d.Name.Name)
				case *ast.GenDecl:
					lintGenDecl(report, d)
				}
			}
		}
	}
	return problems
}

// exportedReceiver reports whether a method's receiver type is exported
// (methods on unexported types are not part of the godoc surface).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true // plain function
	}
	typ := d.Recv.List[0].Type
	for {
		switch x := typ.(type) {
		case *ast.StarExpr:
			typ = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			typ = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true // unusual shape: lint rather than skip
		}
	}
}

// lintGenDecl checks type/const/var declarations: a doc comment on the
// group covers its members; otherwise each exported member needs its
// own.
func lintGenDecl(report func(token.Pos, string, ...any), d *ast.GenDecl) {
	if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
		return
	}
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			doc := s.Doc
			if doc == nil && groupDoc && len(d.Specs) == 1 {
				doc = d.Doc
			}
			checkDoc(report, s.Pos(), doc, s.Name.Name)
		case *ast.ValueSpec:
			var exported *ast.Ident
			for _, name := range s.Names {
				if name.IsExported() {
					exported = name
					break
				}
			}
			if exported == nil {
				continue
			}
			if s.Doc == nil && s.Comment == nil && !groupDoc {
				report(s.Pos(), "exported %s %s has no doc comment (and its group has none)",
					tokenName(d.Tok), exported.Name)
			}
		}
	}
}

// checkDoc requires a doc comment that follows the "Name ..." godoc
// convention (allowing the standard "A Name"/"An Name"/"The Name"
// openers).
func checkDoc(report func(token.Pos, string, ...any), pos token.Pos, doc *ast.CommentGroup, name string) {
	if doc == nil || strings.TrimSpace(doc.Text()) == "" {
		report(pos, "exported %s has no doc comment", name)
		return
	}
	text := strings.TrimSpace(doc.Text())
	for _, opener := range []string{"", "A ", "An ", "The "} {
		if strings.HasPrefix(text, opener+name) {
			return
		}
	}
	report(pos, "doc comment for %s does not start with %q (godoc convention)", name, name)
}

func tokenName(tok token.Token) string {
	switch tok {
	case token.CONST:
		return "const"
	case token.VAR:
		return "var"
	default:
		return "declaration"
	}
}
