// Command osdp-lint is the repository's invariant multichecker: it
// runs every analyzer in internal/lint over the module and exits
// non-zero on any finding, including malformed //lint:ignore
// directives. CI runs it on every push; run it locally with
//
//	go run ./cmd/osdp-lint ./...
//
// Flags:
//
//	-list         print the analyzer catalogue and exit
//	-only a,b,c   run only the named analyzers
//
// The only accepted argument is ./... (or no argument, which means the
// same): the suite's scoping lives inside the analyzers, not in the
// invocation.
package main

import (
	"flag"
	"fmt"
	"os"

	"osdp/internal/lint"
	"osdp/internal/lint/analysis"
)

func main() {
	listFlag := flag.Bool("list", false, "print the analyzer catalogue and exit")
	onlyFlag := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *onlyFlag != "" {
		subset, ok := lint.ByName(*onlyFlag)
		if !ok {
			fmt.Fprintf(os.Stderr, "osdp-lint: unknown analyzer in -only=%s (use -list)\n", *onlyFlag)
			os.Exit(2)
		}
		analyzers = subset
	}
	for _, arg := range flag.Args() {
		if arg != "./..." {
			fmt.Fprintf(os.Stderr, "osdp-lint: only ./... is supported, got %q\n", arg)
			os.Exit(2)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "osdp-lint:", err)
		os.Exit(2)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "osdp-lint:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "osdp-lint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "osdp-lint:", err)
		os.Exit(2)
	}
	diags = append(diags, analysis.MalformedIgnores(pkgs)...)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "osdp-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
