// Command tippersgen generates a synthetic TIPPERS-style Wi-Fi trace and
// writes it as CSV (user, day, resident, slot, ap), one row per occupied
// 10-minute slot — the same triple structure as the paper's
// ⟨AP mac, device mac, timestamp⟩ logs after discretisation.
//
// Usage:
//
//	tippersgen [-users N] [-days N] [-residents FRAC] [-seed N] [-o FILE] [-summary]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"osdp/internal/tippers"
)

func main() {
	users := flag.Int("users", 800, "number of users")
	days := flag.Int("days", 30, "number of days")
	residents := flag.Float64("residents", 0.05, "fraction of resident users")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "-", "output file ('-' = stdout)")
	summary := flag.Bool("summary", false, "print corpus statistics instead of the CSV")
	flag.Parse()

	cfg := tippers.DefaultConfig()
	cfg.Users = *users
	cfg.Days = *days
	cfg.ResidentFrac = *residents
	cfg.Seed = *seed
	corpus := tippers.Generate(cfg)

	if *summary {
		printSummary(corpus)
		return
	}

	var w *bufio.Writer
	if *out == "-" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	fmt.Fprintln(w, "user,day,resident,slot,ap")
	for _, t := range corpus.Trajectories {
		for slot, ap := range t.Slots {
			if ap < 0 {
				continue
			}
			fmt.Fprintf(w, "%d,%d,%t,%d,%d\n", t.User, t.Day, t.Resident, slot, ap)
		}
	}
}

func printSummary(corpus *tippers.Corpus) {
	var residents, visitors, resSlots, visSlots int
	for _, t := range corpus.Trajectories {
		if t.Resident {
			residents++
			resSlots += t.Duration()
		} else {
			visitors++
			visSlots += t.Duration()
		}
	}
	fmt.Printf("trajectories: %d (%d resident, %d visitor)\n",
		len(corpus.Trajectories), residents, visitors)
	if residents > 0 && visitors > 0 {
		fmt.Printf("mean duration: resident %.1f slots, visitor %.1f slots\n",
			float64(resSlots)/float64(residents), float64(visSlots)/float64(visitors))
	}
	cov := corpus.APCoverage()
	idx := make([]int, len(cov))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return cov[idx[a]] > cov[idx[b]] })
	fmt.Println("top access points by trajectory coverage:")
	for _, ap := range idx[:5] {
		fmt.Printf("  ap%-3d %.1f%%\n", ap, 100*cov[ap])
	}
	for _, share := range []float64{0.99, 0.75, 0.5, 0.25} {
		p := corpus.PolicyForShare(share)
		fmt.Printf("policy %s: %d sensitive APs, non-sensitive share %.3f\n",
			p.Name, len(p.SensitiveAPs), corpus.NonSensitiveShare(p))
	}
}
