// Command osdp-bench regenerates the paper's tables and figures on the
// synthetic substrates and prints them as text tables.
//
// Usage:
//
//	osdp-bench [-exp all|table1|table2|fig1|fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|crossover|exclusion|ablations]
//	           [-quick] [-seed N] [-trials N]
//	osdp-bench -dataplane BENCH_dataplane.json [-quick]
//	osdp-bench -ledger BENCH_ledger.json [-analysts N] [-quick]
//	osdp-bench -workload BENCH_workload.json [-quick]
//	osdp-bench -parallel BENCH_parallel.json [-workers N] [-quick]
//	osdp-bench -metrics BENCH_metrics.json [-quick]
//	osdp-bench -traffic BENCH_traffic.json [-quick]
//
// -quick shrinks the workloads for a fast smoke run; the default
// configuration matches the scales recorded in EXPERIMENTS.md.
//
// -dataplane runs only the row-vs-columnar data-plane benchmark (the
// serving hot path: filtered group-by count on a synthetic table, 1M
// rows, or 100k with -quick) and writes the machine-readable result to
// the given JSON file — the artifact CI tracks so the columnar speedup
// cannot silently regress.
//
// -ledger runs only the privacy-budget control-plane benchmark (the
// per-query charge path: in-memory, WAL, and WAL+fsync variants, with
// allocations per charge, plus the group-commit sweep — the fsync'd
// path at 1/8/64 concurrent analysts charging distinct accounts) and
// writes the result to the given JSON file, the artifact CI tracks so
// ledger overhead and the group-commit speedup cannot silently
// regress. -analysts adds one more concurrency point to the sweep
// (0, the default, keeps just 1/8/64).
//
// -workload runs only the range-workload estimator benchmark (the
// serving-side workload engine: per-estimator synopsis fit latency,
// per-range answer latency, and workload L1 error vs the flat Laplace
// baseline on a clustered 1M-row table — 100k with -quick) and writes
// the result to the given JSON file, the artifact CI tracks so the
// structure-exploiting estimators' range-workload advantage cannot
// silently regress.
//
// -parallel runs only the parallel data-plane benchmark (the chunked
// scan worker pool: serial vs -workers-way filtered group-by scan and
// predicate selection on the 1M-row table, 256k with -quick) and
// writes the result to the given JSON file, the artifact CI tracks so
// the multi-core speedup cannot silently regress. The recorded speedup
// is bounded by min(workers, CPUs) — on a single-core machine it is
// ~1.0 by construction.
//
// -metrics runs only the telemetry-overhead benchmark (the full server
// query path with a nil telemetry registry vs. a fully instrumented
// one, 200k rows, 50k with -quick) and writes the result to the given
// JSON file, the artifact CI tracks so instrumentation on the query hot
// path stays effectively free (the PR 6 acceptance bar is <2%).
//
// -traffic runs only the closed-loop multi-tenant traffic harness (N
// concurrent analysts driving the §7-style histogram/count/quantile/
// workload mix through the admission layer's weighted-fair queue at
// 1/8/64 analysts, plus one open-loop arrival point) and writes the
// result to the given JSON file, the artifact CI tracks so per-analyst
// tail latency and the Jain fairness index cannot silently regress.
// Fairness at high analyst counts needs real parallelism to be
// meaningful; on single-core machines the numbers are recorded but the
// CI bar self-skips (same caveat as -parallel).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"osdp/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (comma-separated list or 'all')")
	quick := flag.Bool("quick", false, "use the reduced quick configuration")
	seed := flag.Int64("seed", 0, "override the random seed (0 keeps the default)")
	trials := flag.Int("trials", 0, "override the trial count (0 keeps the default)")
	dataplane := flag.String("dataplane", "", "run the data-plane benchmark and write its JSON result to this file")
	ledgerOut := flag.String("ledger", "", "run the budget-ledger benchmark and write its JSON result to this file")
	analysts := flag.Int("analysts", 0, "extra concurrency point for the -ledger group-commit sweep (0 = just the default 1/8/64)")
	workloadOut := flag.String("workload", "", "run the range-workload estimator benchmark and write its JSON result to this file")
	parallelOut := flag.String("parallel", "", "run the parallel data-plane benchmark and write its JSON result to this file")
	workers := flag.Int("workers", runtime.NumCPU(), "worker count for the -parallel benchmark")
	metricsOut := flag.String("metrics", "", "run the telemetry-overhead benchmark and write its JSON result to this file")
	trafficOut := flag.String("traffic", "", "run the multi-tenant traffic/fairness benchmark and write its JSON result to this file")
	flag.Parse()

	if *dataplane != "" {
		if err := runDataplane(*dataplane, *quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *ledgerOut != "" {
		if err := runLedger(*ledgerOut, *analysts, *quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *workloadOut != "" {
		if err := runWorkloadBench(*workloadOut, *quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *parallelOut != "" {
		if err := runParallelBench(*parallelOut, *workers, *quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *metricsOut != "" {
		if err := runMetricsBench(*metricsOut, *quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *trafficOut != "" {
		if err := runTrafficBench(*trafficOut, *quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
		cfg.Tippers.Seed = *seed
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}

	runners := map[string]func() []*experiments.Report{
		"table1": func() []*experiments.Report {
			return []*experiments.Report{experiments.Table1(cfg, 200000)}
		},
		"table2": func() []*experiments.Report {
			return []*experiments.Report{experiments.Table2(cfg)}
		},
		"fig1": func() []*experiments.Report {
			return []*experiments.Report{
				experiments.Figure1(cfg, 1.0),
				experiments.Figure1(cfg, 0.01),
			}
		},
		"fig2": func() []*experiments.Report {
			return []*experiments.Report{
				experiments.FigureNGrams(cfg, 4, 1.0),
				experiments.FigureNGrams(cfg, 4, 0.01),
			}
		},
		"fig3": func() []*experiments.Report {
			return []*experiments.Report{
				experiments.FigureNGrams(cfg, 5, 1.0),
				experiments.FigureNGrams(cfg, 5, 0.01),
			}
		},
		"fig4": func() []*experiments.Report {
			return []*experiments.Report{
				experiments.Figure4(cfg, 1.0),
				experiments.Figure4(cfg, 0.01),
			}
		},
		"fig5": func() []*experiments.Report {
			return []*experiments.Report{experiments.Figure5(cfg, 1.0)}
		},
		"fig6": func() []*experiments.Report {
			return []*experiments.Report{
				experiments.Figure6(cfg, 1.0),
				experiments.Figure6(cfg, 0.01),
			}
		},
		"fig7": func() []*experiments.Report {
			return []*experiments.Report{experiments.Figure78(cfg, 1.0, "MRE")}
		},
		"fig8": func() []*experiments.Report {
			return []*experiments.Report{experiments.Figure78(cfg, 1.0, "Rel95")}
		},
		"fig9": func() []*experiments.Report {
			return []*experiments.Report{
				experiments.Figure9(cfg, 1.0, 0.99),
				experiments.Figure9(cfg, 1.0, 0.50),
			}
		},
		"fig10": func() []*experiments.Report {
			return []*experiments.Report{experiments.Figure10(cfg, 1.0)}
		},
		"crossover": func() []*experiments.Report {
			return []*experiments.Report{experiments.CrossoverReport()}
		},
		"exclusion": func() []*experiments.Report {
			return []*experiments.Report{experiments.ExclusionExperiment(cfg, 200000)}
		},
		"ablations": func() []*experiments.Report {
			return []*experiments.Report{
				experiments.DAWAzRhoSweep(cfg, 1.0, []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.5}),
				experiments.L1PostprocessAblation(cfg, 1.0),
				experiments.ZeroSourceAblation(cfg, 1.0),
				experiments.TruncationSweep(cfg, 4, 1.0, 4),
			}
		},
		"extensions": func() []*experiments.Report {
			return []*experiments.Report{
				experiments.RecipeGeneralityReport(cfg, 1.0),
				experiments.AGrid2DReport(cfg, 1.0),
				experiments.PrivBayesReport(cfg, []float64{1.0, 0.2}),
				experiments.RangeWorkloadReport(cfg, 1.0, 200),
				experiments.ConstraintClosureReport(cfg),
				experiments.PolicyLearningReport(cfg, []int{100, 500, 2000}),
			}
		},
	}
	order := []string{
		"table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5",
		"fig6", "fig7", "fig8", "fig9", "fig10", "crossover", "exclusion",
		"ablations", "extensions",
	}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			if _, ok := runners[name]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (known: %s)\n", name, strings.Join(order, ", "))
				os.Exit(2)
			}
			selected = append(selected, name)
		}
	}

	for _, name := range selected {
		start := time.Now()
		for _, rep := range runners[name]() {
			fmt.Println(rep.String())
		}
		fmt.Printf("[%s finished in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

// runDataplane measures the row vs columnar group-by throughput and
// writes the result as JSON.
func runDataplane(path string, quick bool) error {
	rows, minDur := 1_000_000, 2*time.Second
	if quick {
		rows, minDur = 100_000, 300*time.Millisecond
	}
	res, err := experiments.MeasureDataplane(rows, 64, minDur)
	if err != nil {
		return fmt.Errorf("dataplane benchmark: %w", err)
	}
	fmt.Println(res.String())
	body, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding %s: %w", path, err)
	}
	if err := os.WriteFile(path, append(body, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runWorkloadBench measures the range-workload estimators and writes
// the result as JSON.
func runWorkloadBench(path string, quick bool) error {
	rows, queries := 1_000_000, 1000
	if quick {
		rows, queries = 100_000, 200
	}
	res, err := experiments.MeasureWorkload(rows, 1024, queries, 1.0)
	if err != nil {
		return fmt.Errorf("workload benchmark: %w", err)
	}
	fmt.Println(res.String())
	body, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding %s: %w", path, err)
	}
	if err := os.WriteFile(path, append(body, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runParallelBench measures the serial vs parallel scan and writes the
// result as JSON.
func runParallelBench(path string, workers int, quick bool) error {
	rows, minDur := 1_000_000, 2*time.Second
	if quick {
		rows, minDur = 256_000, 300*time.Millisecond
	}
	res, err := experiments.MeasureParallel(rows, 64, workers, minDur)
	if err != nil {
		return fmt.Errorf("parallel benchmark: %w", err)
	}
	fmt.Println(res.String())
	body, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding %s: %w", path, err)
	}
	if err := os.WriteFile(path, append(body, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runMetricsBench measures the telemetry plane's query-path overhead
// and writes the result as JSON.
func runMetricsBench(path string, quick bool) error {
	rows, minDur := 200_000, 1*time.Second
	if quick {
		rows, minDur = 50_000, 200*time.Millisecond
	}
	auditDir, err := os.MkdirTemp("", "osdp-bench-audit")
	if err != nil {
		return err
	}
	defer os.RemoveAll(auditDir)
	res, err := experiments.MeasureTelemetryOverhead(rows, 64, minDur, auditDir)
	if err != nil {
		return fmt.Errorf("telemetry benchmark: %w", err)
	}
	fmt.Println(res.String())
	body, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding %s: %w", path, err)
	}
	if err := os.WriteFile(path, append(body, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runTrafficBench measures multi-tenant latency and fairness through
// the admission layer and writes the result as JSON.
func runTrafficBench(path string, quick bool) error {
	opt := experiments.TrafficOptions{OpenLoopAnalysts: 8}
	if quick {
		opt = experiments.TrafficOptions{
			Rows:             10_000,
			AnalystCounts:    []int{1, 8},
			PerPoint:         400 * time.Millisecond,
			OpenLoopAnalysts: 2,
			OpenLoopRate:     50,
		}
	}
	res, err := experiments.MeasureTraffic(opt)
	if err != nil {
		return fmt.Errorf("traffic benchmark: %w", err)
	}
	fmt.Println(res.String())
	body, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding %s: %w", path, err)
	}
	if err := os.WriteFile(path, append(body, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runLedger measures the control-plane charge path (serial variants
// plus the concurrent group-commit sweep) and writes the result as
// JSON. extraAnalysts > 0 adds one more concurrency point.
func runLedger(path string, extraAnalysts int, quick bool) error {
	charges := 50_000
	if quick {
		charges = 5_000
	}
	dir, err := os.MkdirTemp("", "osdp-ledger-bench-*")
	if err != nil {
		return fmt.Errorf("ledger benchmark: %w", err)
	}
	defer os.RemoveAll(dir)
	res, err := experiments.MeasureLedger(dir, charges, extraAnalysts)
	if err != nil {
		return fmt.Errorf("ledger benchmark: %w", err)
	}
	fmt.Println(res.String())
	body, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding %s: %w", path, err)
	}
	if err := os.WriteFile(path, append(body, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
