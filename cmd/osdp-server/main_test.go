package main

import (
	"net/http"
	"testing"
	"time"
)

// TestHTTPServerTimeouts pins the slow-loris hardening: the zero-value
// http.Server has no timeouts at all, so a client trickling bytes
// holds a connection (and goroutine) forever. Every timeout must be
// set, and the header timeout must be the tightest read bound.
func TestHTTPServerTimeouts(t *testing.T) {
	hs := newHTTPServer(":0", http.NewServeMux())
	if hs.ReadHeaderTimeout <= 0 {
		t.Fatal("ReadHeaderTimeout unset: slow-loris headers pin connections forever")
	}
	if hs.ReadTimeout <= 0 {
		t.Fatal("ReadTimeout unset: slow request bodies pin connections forever")
	}
	if hs.WriteTimeout <= 0 {
		t.Fatal("WriteTimeout unset: slow readers pin responses forever")
	}
	if hs.IdleTimeout <= 0 {
		t.Fatal("IdleTimeout unset: idle keep-alive connections accumulate")
	}
	if hs.ReadHeaderTimeout > hs.ReadTimeout {
		t.Fatalf("ReadHeaderTimeout %v exceeds ReadTimeout %v; headers must be the tightest bound",
			hs.ReadHeaderTimeout, hs.ReadTimeout)
	}
	if hs.ReadHeaderTimeout > 30*time.Second {
		t.Fatalf("ReadHeaderTimeout %v is too generous to stop a slow-loris", hs.ReadHeaderTimeout)
	}
	if hs.Addr != ":0" || hs.Handler == nil {
		t.Fatalf("addr/handler not wired: %q, %v", hs.Addr, hs.Handler)
	}
}
