// Command osdp-server serves OSDP queries over HTTP/JSON: the online,
// multi-tenant setting §7 of the paper flags as the open engineering
// problem. Datasets are loaded from typed CSV files at startup (and can
// also be registered at runtime via POST /v1/datasets); clients open
// budgeted sessions and answer histogram, int-histogram, count,
// quantile, and sample queries against them. See internal/server for the
// API and wire format.
//
// Usage:
//
//	osdp-server [-addr :8080] [-ttl 30m] [-max-sessions N]
//	            [-max-session-eps E] [-allow-seeds] [-scan-workers N]
//	            [-ledger DIR] [-fsync-batch-window D] [-admin-token TOK]
//	            [-default-analyst-eps E] [-max-analyst-sessions N]
//	            [-access-log=false] [-trace-ring N] [-trace-slow D]
//	            [-audit DIR] [-admit-concurrency N] [-admit-rate R]
//	            [-admit-burst N] [-admit-queue N]
//	            [-admit-analyst-concurrency N]
//	            [-data NAME=FILE.csv]... [-policy NAME=FILE.json]...
//
// -scan-workers caps the data-plane scan parallelism: vectorized
// predicate evaluation, policy splits, and histogram passes over tables
// above 64K rows shard across this many goroutines (default: the number
// of CPUs). 1 forces serial scans; answers are bit-identical either
// way, so the knob trades latency against CPU share, never correctness.
//
// -ledger DIR turns on the privacy-budget control plane: analyst
// identity (bearer API keys), durable per-(analyst, dataset) ε accounts
// replayed from DIR on startup, and the /admin API (guarded by
// -admin-token, or the OSDP_ADMIN_TOKEN environment variable — prefer
// the env var, which keeps the secret out of process listings). With a
// ledger every /v1 request must authenticate; -default-analyst-eps is
// the budget an analyst gets per dataset without an explicit grant, and
// -max-analyst-sessions caps one analyst's concurrent sessions.
//
// Durable charges are group-committed: concurrent charges share one
// WAL fsync instead of paying one each. -fsync-batch-window stretches
// the batching — once a record is queued, the committer waits that
// long for more before fsyncing, trading single-charge latency for
// fewer, larger batches. The default 0 commits as soon as the
// committer is free, which already coalesces whatever arrives during
// the previous fsync; set a window (e.g. 2ms) only when fsync
// throughput, not latency, is the binding constraint.
//
// Each -data flag registers a dataset; its privacy policy is taken from
// the matching -policy flag (a JSON PolicySpec, e.g.
//
//	{"name": "gdpr", "sensitive_when":
//	    {"op": "cmp", "attr": "Age", "cmp": "<=", "value": 17}}
//
// ). A dataset without a policy defaults to all-sensitive, the safe
// choice: under P_all, OSDP degenerates to standard DP and nothing is
// released in the clear by accident.
//
// Observability is always on: GET /metrics serves the process's
// counters, gauges, and latency histograms in the Prometheus text
// format (credential-free, like /stats — it carries only pre-aggregated
// operational series), runtime profiles hang off /admin/pprof/ behind
// the admin token, and every response carries an X-Request-Id that the
// structured access log (one slog line per request on stderr;
// -access-log=false silences it) repeats for correlation. A valid
// 16-hex inbound X-Request-Id is honored, so clients can pick the id
// they will later look up.
//
// Every request is also traced: timed spans (auth, compile, ledger
// charge, scan, noise, encode) land in a fixed-size ring served by
// GET /admin/traces and /admin/traces/{id}. -trace-ring sizes the ring
// (0 disables tracing); requests slower than -trace-slow are promoted
// to the access log and pinned in a separate slow ring so one burst of
// fast traffic cannot evict the evidence of an outlier.
//
// -audit DIR keeps a durable append-only JSONL privacy-audit trail: one
// event per ε-bearing decision (charged, refunded, retained, denied),
// group-fsynced with the same torn-tail discipline as the ledger WAL,
// served by GET /admin/audit. Without the flag the trail is in-memory
// only (recent events still queryable, nothing survives a restart).
//
// -admit-concurrency turns on admission control: at most N queries
// execute at once and the surplus waits in a weighted-fair queue, so
// one flooding analyst cannot starve the rest (each analyst's share of
// the pipe tracks their weight, default 1, settable per analyst at
// runtime via POST /admin/limits). -admit-rate/-admit-burst add a
// per-analyst token bucket; over-rate and over-queue requests are
// rejected with 429 and a Retry-After header rather than queued
// forever. -admit-queue caps one analyst's waiting requests (default
// 64) and -admit-analyst-concurrency caps one analyst's in-flight
// share of the pipe (0 = no per-analyst cap). All the caps are
// defaults that /admin/limits can override per analyst without a
// restart. Without -admit-concurrency none of this runs and queries
// execute unqueued, exactly as before.
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// queries before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"osdp/internal/audit"
	"osdp/internal/dataset"
	"osdp/internal/ledger"
	"osdp/internal/server"
	"osdp/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	ttl := flag.Duration("ttl", 30*time.Minute, "idle session time-to-live (0 = never expire)")
	maxSessions := flag.Int("max-sessions", 0, "cap on concurrently open sessions (0 = unlimited)")
	maxEps := flag.Float64("max-session-eps", 0, "cap on any one session's ε budget; also forbids unlimited sessions (0 = no cap)")
	allowSeeds := flag.Bool("allow-seeds", false, "let clients open seeded (reproducible) sessions — predictable noise voids the OSDP guarantee, test/demo use only")
	scanWorkers := flag.Int("scan-workers", runtime.NumCPU(), "data-plane scan parallelism: goroutines per vectorized pass on large tables (1 = serial)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	ledgerDir := flag.String("ledger", "", "durable privacy-budget ledger directory; enables analyst auth and cross-session ε accounting")
	fsyncBatchWindow := flag.Duration("fsync-batch-window", 0, "how long the ledger's group committer waits for more records before fsyncing a batch (0 = commit as soon as free)")
	adminToken := flag.String("admin-token", "", "bearer token for the /admin API (default $OSDP_ADMIN_TOKEN); empty disables /admin")
	defaultEps := flag.Float64("default-analyst-eps", 1.0, "default per-(analyst, dataset) ε budget when no explicit grant exists (0 = unlimited)")
	maxAnalystSessions := flag.Int("max-analyst-sessions", 0, "cap on one analyst's concurrently open sessions (0 = unlimited)")
	accessLog := flag.Bool("access-log", true, "emit one structured (slog) line per HTTP request on stderr")
	traceRing := flag.Int("trace-ring", telemetry.DefaultTraceRing, "finished request traces retained for /admin/traces (0 disables tracing)")
	traceSlow := flag.Duration("trace-slow", telemetry.DefaultSlowThreshold, "requests at least this slow are logged and pinned in the slow-trace ring (-1ns disables promotion)")
	auditDir := flag.String("audit", "", "durable privacy-audit trail directory (empty = in-memory only)")
	admitConcurrency := flag.Int("admit-concurrency", 0, "enable admission control with this many execution slots; surplus queries wait in a weighted-fair queue (0 = admission control off)")
	admitRate := flag.Float64("admit-rate", 0, "per-analyst sustained query rate, tokens/second (0 = no rate limit; needs -admit-concurrency)")
	admitBurst := flag.Float64("admit-burst", 0, "per-analyst token-bucket burst (0 = 2x rate; needs -admit-rate)")
	admitQueue := flag.Int("admit-queue", 0, "per-analyst queued-request cap before 429 (0 = default 64; needs -admit-concurrency)")
	admitAnalystConcurrency := flag.Int("admit-analyst-concurrency", 0, "per-analyst in-flight query cap (0 = no per-analyst cap; needs -admit-concurrency)")
	data := map[string]string{}
	policies := map[string]string{}
	flag.Func("data", "NAME=FILE.csv dataset to register at startup (repeatable)", kvInto(data))
	flag.Func("policy", "NAME=FILE.json policy for the dataset NAME (repeatable)", kvInto(policies))
	flag.Parse()

	// Set scan parallelism before any dataset loads so registration-time
	// precompute (splits, bin vectors) already uses the pool.
	if eff := dataset.SetScanWorkers(*scanWorkers); eff != *scanWorkers {
		log.Printf("scan workers clamped to %d (requested %d)", eff, *scanWorkers)
	}

	// One process-wide metrics registry feeds GET /metrics. Installed
	// before any dataset loads so registration-time scans already count.
	reg := telemetry.NewRegistry()
	dataset.SetScanMetrics(dataset.NewScanMetrics(reg))

	var led *ledger.Ledger
	if *ledgerDir != "" {
		// The env fallback applies only in ledger mode: an exported
		// OSDP_ADMIN_TOKEN must not break a ledger-less invocation that
		// never asked for an admin API.
		if *adminToken == "" {
			*adminToken = os.Getenv("OSDP_ADMIN_TOKEN")
		}
		var err error
		led, err = ledger.Open(ledger.Config{
			Dir:              *ledgerDir,
			DefaultBudget:    *defaultEps,
			FsyncBatchWindow: *fsyncBatchWindow,
			Telemetry:        reg,
		})
		if err != nil {
			fatal(err)
		}
		defer led.Close()
		log.Printf("ledger open at %s: %s", *ledgerDir, ledgerSummary(led))
		if *adminToken == "" {
			log.Printf("warning: ledger enabled without -admin-token / $OSDP_ADMIN_TOKEN; the /admin API is disabled and no analysts can be created")
		}
	} else if *adminToken != "" {
		fatal(errors.New("-admin-token requires -ledger (the admin API administers the ledger)"))
	}

	cfg := server.Config{
		SessionTTL:            *ttl,
		MaxSessions:           *maxSessions,
		MaxSessionBudget:      *maxEps,
		AllowSeededSessions:   *allowSeeds,
		Ledger:                led,
		AdminToken:            *adminToken,
		MaxSessionsPerAnalyst: *maxAnalystSessions,
		Telemetry:             reg,
	}
	if *accessLog {
		cfg.AccessLog = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	if *admitConcurrency > 0 {
		cfg.Admission = &server.AdmissionConfig{
			MaxConcurrent:      *admitConcurrency,
			AnalystConcurrency: *admitAnalystConcurrency,
			RatePerSec:         *admitRate,
			Burst:              *admitBurst,
			MaxQueued:          *admitQueue,
		}
		queueCap := *admitQueue
		if queueCap == 0 {
			queueCap = server.DefaultMaxQueued
		}
		log.Printf("admission control on: %d slot(s), per-analyst rate %.4g/s, queue cap %d",
			*admitConcurrency, *admitRate, queueCap)
	} else if *admitRate > 0 || *admitBurst > 0 || *admitQueue > 0 || *admitAnalystConcurrency > 0 {
		fatal(errors.New("-admit-rate/-admit-burst/-admit-queue/-admit-analyst-concurrency require -admit-concurrency"))
	}
	if *traceRing > 0 {
		cfg.Tracer = telemetry.NewTracer(telemetry.TracerConfig{
			RingSize:      *traceRing,
			SlowThreshold: *traceSlow,
		})
	}
	aud, err := audit.Open(audit.Config{Dir: *auditDir, Telemetry: reg})
	if err != nil {
		fatal(err)
	}
	defer aud.Close()
	if *auditDir != "" {
		log.Printf("audit trail open at %s: %d event(s) replayed", *auditDir, aud.Seq())
	}
	cfg.Audit = aud
	srv := server.New(cfg)
	for name, path := range data {
		if err := loadDataset(srv, name, path, policies[name]); err != nil {
			fatal(err)
		}
	}
	for name := range policies {
		if _, ok := data[name]; !ok {
			fatal(fmt.Errorf("-policy %s given but no matching -data flag", name))
		}
	}
	if *ttl > 0 {
		srv.StartJanitor(*ttl / 4)
	}

	hs := newHTTPServer(*addr, srv.Handler())
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("osdp-server listening on %s with %d dataset(s)", *addr, len(data))

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		log.Printf("osdp-server draining (up to %s)", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("osdp-server shutdown: %v", err)
		}
		srv.Close()
	}
}

// newHTTPServer wraps the handler in an http.Server with every timeout
// set. The zero-value timeouts http.Server ships with let one
// slow-loris client pin a connection (and its goroutine) forever by
// trickling header bytes; a fleet of them exhausts the server without
// ever completing a request. Read/Write are generous because request
// bodies legitimately reach the 64 MB CSV-registration cap and sample
// responses can exceed it.
func newHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// loadDataset reads a CSV table and its policy file (all-sensitive when
// policyPath is empty) and registers both.
func loadDataset(srv *server.Server, name, csvPath, policyPath string) error {
	f, err := os.Open(csvPath)
	if err != nil {
		return err
	}
	defer f.Close()
	t, err := dataset.ReadCSV(f)
	if err != nil {
		return fmt.Errorf("dataset %s: %w", name, err)
	}

	policy := dataset.AllSensitive()
	if policyPath != "" {
		raw, err := os.ReadFile(policyPath)
		if err != nil {
			return err
		}
		var spec server.PolicySpec
		if err := json.Unmarshal(raw, &spec); err != nil {
			return fmt.Errorf("policy %s: %w", policyPath, err)
		}
		if policy, err = server.CompilePolicy(spec, t.Schema()); err != nil {
			return err
		}
	}
	if err := srv.RegisterTable(name, t, policy); err != nil {
		return err
	}
	log.Printf("registered dataset %s: %d rows, policy %s", name, t.Len(), policy.Name())
	return nil
}

// kvInto parses repeated NAME=VALUE flags into dst.
func kvInto(dst map[string]string) func(string) error {
	return func(s string) error {
		name, value, ok := strings.Cut(s, "=")
		if !ok || name == "" || value == "" {
			return errors.New("expected NAME=FILE")
		}
		if _, dup := dst[name]; dup {
			return fmt.Errorf("duplicate flag for %s", name)
		}
		dst[name] = value
		return nil
	}
}

// ledgerSummary renders the replayed state for the startup log line.
func ledgerSummary(l *ledger.Ledger) string {
	analysts, accounts := l.Counts()
	return fmt.Sprintf("%d analyst(s), %d account(s), %.4g ε spent", analysts, accounts, l.TotalSpent())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "osdp-server:", err)
	os.Exit(1)
}
