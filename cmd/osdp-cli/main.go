// Command osdp-cli answers a histogram query under one-sided differential
// privacy from the command line. The input is a CSV with one row per bin:
//
//	count[,ns_count]
//
// where count is the full histogram and ns_count (optional, defaults to
// count) is the count over non-sensitive records only. The chosen
// mechanism's noisy histogram is written to stdout with per-bin and
// aggregate error against the true counts.
//
// Usage:
//
//	osdp-cli -mech osdplaplace|osdplaplacel1|osdpgeometric|osdprr|dawaz|dawa|hier|hierz|laplace
//	         [-eps E] [-rho R] [-seed N] [-in FILE] [-secure] [-snap LAMBDA]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"osdp/internal/core"
	"osdp/internal/dawa"
	"osdp/internal/hier"
	"osdp/internal/histogram"
	"osdp/internal/mechanism"
	"osdp/internal/metrics"
	"osdp/internal/noise"
)

func main() {
	mech := flag.String("mech", "osdplaplacel1", "mechanism to run")
	eps := flag.Float64("eps", 1.0, "privacy parameter ε")
	rho := flag.Float64("rho", 0.1, "DAWAz/Hierz zero-detection budget share")
	seed := flag.Int64("seed", 1, "random seed (ignored with -secure)")
	in := flag.String("in", "-", "input CSV ('-' = stdin)")
	secure := flag.Bool("secure", false, "draw noise from crypto/rand instead of the seeded PRNG")
	snap := flag.Float64("snap", 0, "if > 0, snap outputs to this grid (floating-point hardening)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	x, xns, err := readHistograms(r)
	if err != nil {
		fatal(err)
	}

	var src noise.Source = noise.NewSource(*seed)
	if *secure {
		src = noise.NewSecureSource()
	}
	var est *histogram.Histogram
	switch strings.ToLower(*mech) {
	case "osdplaplace":
		est = core.OsdpLaplace(xns, *eps, src)
	case "osdplaplacel1":
		est = core.OsdpLaplaceL1(xns, *eps, src)
	case "osdpgeometric":
		est = core.OsdpGeometric(xns, *eps, src)
	case "osdprr":
		est = core.RRSampleHistogram(xns, *eps, src)
	case "dawaz":
		est = dawa.DAWAz(x, xns, *eps, *rho, src)
	case "dawa":
		est, _ = dawa.New().Estimate(x, *eps, src)
	case "hier":
		est, _ = hier.Estimator{}.Estimate(x, *eps, src)
	case "hierz":
		est = hier.Hierz(x, xns, *eps, *rho, src)
	case "laplace":
		est = mechanism.LaplaceHistogram(x, *eps, src)
	default:
		fatal(fmt.Errorf("unknown mechanism %q", *mech))
	}
	if *snap > 0 {
		bound := x.Scale() + 100/(*eps) // generous clamp: total mass plus noise headroom
		for i := 0; i < est.Bins(); i++ {
			est.SetCount(i, noise.Snap(est.Count(i), *snap, bound))
		}
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "bin,true,estimate")
	for i := 0; i < x.Bins(); i++ {
		fmt.Fprintf(w, "%d,%g,%g\n", i, x.Count(i), est.Count(i))
	}
	fmt.Fprintf(w, "# mechanism=%s eps=%g MRE=%.4g L1=%.4g Rel95=%.4g\n",
		*mech, *eps,
		metrics.MRE(x, est, 1), metrics.L1(x, est), metrics.RelPercentile(x, est, 1, 95))
}

// readHistograms parses "count[,ns_count]" rows.
func readHistograms(r io.Reader) (x, xns *histogram.Histogram, err error) {
	var full, ns []float64
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		c, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: %v", line, err)
		}
		n := c
		if len(parts) > 1 {
			n, err = strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %v", line, err)
			}
		}
		if n > c {
			return nil, nil, fmt.Errorf("line %d: ns_count %g exceeds count %g", line, n, c)
		}
		full = append(full, c)
		ns = append(ns, n)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(full) == 0 {
		return nil, nil, fmt.Errorf("no histogram rows in input")
	}
	return histogram.FromCounts(full), histogram.FromCounts(ns), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "osdp-cli:", err)
	os.Exit(1)
}
