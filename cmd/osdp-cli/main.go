// Command osdp-cli answers OSDP queries from the command line, in two
// modes.
//
// OFFLINE (default): the input is a CSV with one row per bin:
//
//	count[,ns_count]
//
// where count is the full histogram and ns_count (optional, defaults to
// count) is the count over non-sensitive records only. The chosen
// mechanism's noisy histogram is written to stdout with per-bin and
// aggregate error against the true counts.
//
// SERVER (-server URL): the CLI talks to a running osdp-server,
// opening a session over -dataset and answering a range-count workload
// from a single fitted synopsis (one composed ε charge for the whole
// batch). Against a -ledger server every request must carry an analyst
// API key: pass it with -token or the OSDP_TOKEN environment variable
// (prefer the env var, which keeps the secret out of process
// listings). Ranges are -ranges random intervals over the declared
// domain (log-uniform lengths, seeded by -seed); answers are written
// as "lo,hi,answer" CSV with the post-charge budget in a trailing
// comment.
//
// Operator subcommands ride the same client, so a shell needs no curl:
// `osdp-cli health -server URL` probes /healthz and `osdp-cli stats
// -server URL` pretty-prints /stats (both endpoints are
// credential-free). `osdp-cli traces` and `osdp-cli audit` read the
// admin-realm observability endpoints — pass the operator token with
// -admin-token or the OSDP_ADMIN_TOKEN environment variable (prefer
// the env var, which keeps the secret out of process listings).
// `traces` lists retained request traces (filter with -kind, -analyst,
// -min-duration, -limit) or, with -id, prints one trace span by span;
// `audit` tails the privacy-audit trail (filter with -analyst, -since,
// -until RFC3339, -limit). `osdp-cli limits` reads the admission-control
// plane: without -analyst it lists the resolved defaults and every
// per-analyst override; with -analyst it installs (or, with all numeric
// flags zero, clears) that analyst's override — zero-valued fields
// inherit the server default. A query rejected by admission control
// comes back as a 429 whose message renders the server's Retry-After
// pause.
//
// Usage:
//
//	osdp-cli -mech osdplaplace|osdplaplacel1|osdpgeometric|osdprr|dawaz|dawa|hier|hierz|laplace
//	         [-eps E] [-rho R] [-seed N] [-in FILE] [-secure] [-snap LAMBDA]
//	osdp-cli -server URL -dataset NAME -attr ATTR -bins N [-lo X] [-width W]
//	         [-estimator flat|hier|dawa|ahp|agrid] [-ranges N] [-eps E]
//	         [-budget E] [-token KEY] [-seed N]
//	osdp-cli health -server URL
//	osdp-cli stats  -server URL
//	osdp-cli traces -server URL [-admin-token TOK] [-id ID] [-kind K]
//	         [-analyst A] [-min-duration D] [-limit N]
//	osdp-cli audit  -server URL [-admin-token TOK] [-analyst A]
//	         [-since T] [-until T] [-limit N]
//	osdp-cli limits -server URL [-admin-token TOK] [-analyst A
//	         [-weight W] [-rate R] [-burst B] [-concurrency N] [-queue N]]
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"osdp/internal/core"
	"osdp/internal/dawa"
	"osdp/internal/hier"
	"osdp/internal/histogram"
	"osdp/internal/mechanism"
	"osdp/internal/metrics"
	"osdp/internal/noise"
	"osdp/internal/server"
)

func main() {
	// Subcommands are dispatched before flag.Parse so their own flag
	// sets own the remaining arguments.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "stats", "health", "traces", "audit", "limits":
			if err := runServerCommand(os.Args[1], os.Args[2:], os.Stdout); err != nil {
				fatal(err)
			}
			return
		}
	}
	mech := flag.String("mech", "osdplaplacel1", "mechanism to run (offline mode)")
	eps := flag.Float64("eps", 1.0, "privacy parameter ε")
	rho := flag.Float64("rho", 0.1, "DAWAz/Hierz zero-detection budget share")
	seed := flag.Int64("seed", 1, "random seed (ignored with -secure)")
	in := flag.String("in", "-", "input CSV ('-' = stdin)")
	secure := flag.Bool("secure", false, "draw noise from crypto/rand instead of the seeded PRNG")
	snap := flag.Float64("snap", 0, "if > 0, snap outputs to this grid (floating-point hardening)")
	serverURL := flag.String("server", "", "osdp-server base URL; switches to server mode")
	token := flag.String("token", "", "analyst API key for -ledger servers (default $OSDP_TOKEN)")
	dsName := flag.String("dataset", "", "server mode: dataset to query")
	attr := flag.String("attr", "", "server mode: numeric attribute the workload ranges over")
	lo := flag.Float64("lo", 0, "server mode: domain lower bound")
	width := flag.Float64("width", 1, "server mode: domain bin width")
	bins := flag.Int("bins", 0, "server mode: domain bin count")
	estimator := flag.String("estimator", "flat", "server mode: workload estimator (flat|hier|dawa|ahp|agrid)")
	nRanges := flag.Int("ranges", 100, "server mode: number of random range queries")
	budget := flag.Float64("budget", 0, "server mode: session ε budget (0 = unlimited)")
	flag.Parse()

	if *serverURL != "" {
		if *token == "" {
			// The env fallback keeps the key out of `ps` output; an
			// explicit -token still wins for scripting.
			*token = os.Getenv("OSDP_TOKEN")
		}
		err := runWorkload(workloadRun{
			base: *serverURL, token: *token, dataset: *dsName,
			attr: *attr, lo: *lo, width: *width, bins: *bins,
			estimator: *estimator, ranges: *nRanges,
			eps: *eps, budget: *budget, seed: *seed,
			out: os.Stdout,
		})
		if err != nil {
			fatal(err)
		}
		return
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	x, xns, err := readHistograms(r)
	if err != nil {
		fatal(err)
	}

	var src noise.Source = noise.NewSource(*seed)
	if *secure {
		src = noise.NewSecureSource()
	}
	var est *histogram.Histogram
	switch strings.ToLower(*mech) {
	case "osdplaplace":
		est = core.OsdpLaplace(xns, *eps, src)
	case "osdplaplacel1":
		est = core.OsdpLaplaceL1(xns, *eps, src)
	case "osdpgeometric":
		est = core.OsdpGeometric(xns, *eps, src)
	case "osdprr":
		est = core.RRSampleHistogram(xns, *eps, src)
	case "dawaz":
		est = dawa.DAWAz(x, xns, *eps, *rho, src)
	case "dawa":
		est, _ = dawa.New().Estimate(x, *eps, src)
	case "hier":
		est, _ = hier.Estimator{}.Estimate(x, *eps, src)
	case "hierz":
		est = hier.Hierz(x, xns, *eps, *rho, src)
	case "laplace":
		est = mechanism.LaplaceHistogram(x, *eps, src)
	default:
		fatal(fmt.Errorf("unknown mechanism %q", *mech))
	}
	if *snap > 0 {
		bound := x.Scale() + 100/(*eps) // generous clamp: total mass plus noise headroom
		for i := 0; i < est.Bins(); i++ {
			est.SetCount(i, noise.Snap(est.Count(i), *snap, bound))
		}
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "bin,true,estimate")
	for i := 0; i < x.Bins(); i++ {
		fmt.Fprintf(w, "%d,%g,%g\n", i, x.Count(i), est.Count(i))
	}
	fmt.Fprintf(w, "# mechanism=%s eps=%g MRE=%.4g L1=%.4g Rel95=%.4g\n",
		*mech, *eps,
		metrics.MRE(x, est, 1), metrics.L1(x, est), metrics.RelPercentile(x, est, 1, 95))
}

// readHistograms parses "count[,ns_count]" rows.
func readHistograms(r io.Reader) (x, xns *histogram.Histogram, err error) {
	var full, ns []float64
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		c, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: %v", line, err)
		}
		n := c
		if len(parts) > 1 {
			n, err = strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %v", line, err)
			}
		}
		if n > c {
			return nil, nil, fmt.Errorf("line %d: ns_count %g exceeds count %g", line, n, c)
		}
		full = append(full, c)
		ns = append(ns, n)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(full) == 0 {
		return nil, nil, fmt.Errorf("no histogram rows in input")
	}
	return histogram.FromCounts(full), histogram.FromCounts(ns), nil
}

// workloadRun is the server-mode configuration, factored out of main
// so the authentication path is testable against a real HTTP server.
type workloadRun struct {
	base, token   string
	dataset, attr string
	estimator     string
	lo, width     float64
	bins, ranges  int
	eps, budget   float64
	seed          int64
	out           io.Writer
}

// runWorkload opens a session and answers a random range-count
// workload from one fitted synopsis. The whole batch charges eps once.
func runWorkload(cfg workloadRun) error {
	switch {
	case cfg.dataset == "":
		return fmt.Errorf("server mode needs -dataset")
	case cfg.attr == "":
		return fmt.Errorf("server mode needs -attr")
	case cfg.bins <= 0:
		return fmt.Errorf("server mode needs -bins > 0")
	case cfg.ranges <= 0:
		return fmt.Errorf("server mode needs -ranges > 0")
	}
	c := server.NewClient(cfg.base, nil).WithTimeout(time.Minute)
	if cfg.token != "" {
		c = c.WithToken(cfg.token)
	}
	ctx := context.Background()
	sc, err := c.OpenSession(ctx, cfg.dataset, cfg.budget, nil)
	if err != nil {
		return fmt.Errorf("opening session (a -ledger server needs -token/$OSDP_TOKEN): %w", err)
	}
	defer sc.Close(ctx)

	// The same log-uniform workload the benchmarks score on, so CLI
	// answers are comparable to BENCH_workload.json.
	workload := metrics.RandomRangeWorkload(cfg.ranges, cfg.bins, rand.New(rand.NewSource(cfg.seed)))
	ranges := make([]server.RangeSpec, len(workload))
	for i, rq := range workload {
		ranges[i] = server.RangeSpec{Lo: rq.Lo, Hi: rq.Hi}
	}
	dims := []server.DomainSpec{{Attr: cfg.attr, Lo: cfg.lo, Width: cfg.width, Bins: cfg.bins}}
	resp, err := sc.Workload(ctx, cfg.eps, cfg.estimator, nil, dims, ranges)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(cfg.out)
	defer w.Flush()
	fmt.Fprintln(w, "lo,hi,answer")
	for i, r := range ranges {
		fmt.Fprintf(w, "%d,%d,%g\n", r.Lo, r.Hi, resp.Answers[i])
	}
	fmt.Fprintf(w, "# estimator=%s queries=%d eps=%g session_spent=%g guarantee=%s\n",
		resp.Estimator, len(ranges), cfg.eps, resp.Budget.Spent, resp.Budget.Guarantee)
	return nil
}

// runServerCommand implements the operator subcommands (health, stats,
// traces, audit), factored out of main with an injectable writer so
// tests can drive them against a real HTTP server.
func runServerCommand(name string, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("osdp-cli "+name, flag.ContinueOnError)
	serverURL := fs.String("server", "", "osdp-server base URL (required)")
	var adminToken, traceID, kind, analyst, since, until *string
	var minDur *time.Duration
	var limit *int
	var weight, rate, burst *float64
	var concurrency, queue *int
	if name == "traces" || name == "audit" || name == "limits" {
		adminToken = fs.String("admin-token", "", "operator bearer token (default $OSDP_ADMIN_TOKEN)")
	}
	if name == "traces" || name == "audit" {
		analyst = fs.String("analyst", "", "only events/traces for this analyst ID")
		limit = fs.Int("limit", 0, "cap on returned entries (0 = server default)")
	}
	if name == "limits" {
		analyst = fs.String("analyst", "", "set this analyst's admission override instead of listing (all numeric flags zero clears it)")
		weight = fs.Float64("weight", 0, "fair-share weight (0 = server default)")
		rate = fs.Float64("rate", 0, "sustained queries/second (0 = server default)")
		burst = fs.Float64("burst", 0, "token-bucket burst (0 = server default)")
		concurrency = fs.Int("concurrency", 0, "in-flight query cap (0 = server default)")
		queue = fs.Int("queue", 0, "queued-request cap (0 = server default)")
	}
	if name == "traces" {
		traceID = fs.String("id", "", "fetch one trace by request id instead of listing")
		kind = fs.String("kind", "", "only traces of this query kind")
		minDur = fs.Duration("min-duration", 0, "only traces at least this slow")
	}
	if name == "audit" {
		since = fs.String("since", "", "only events at or after this RFC3339 time")
		until = fs.String("until", "", "only events at or before this RFC3339 time")
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *serverURL == "" {
		return fmt.Errorf("%s needs -server URL", name)
	}
	c := server.NewClient(*serverURL, nil).WithTimeout(30 * time.Second)
	if adminToken != nil {
		if *adminToken == "" {
			*adminToken = os.Getenv("OSDP_ADMIN_TOKEN")
		}
		c = c.WithToken(*adminToken)
	}
	ctx := context.Background()
	switch name {
	case "health":
		if err := c.Healthz(ctx); err != nil {
			return err
		}
		fmt.Fprintln(out, "ok")
	case "stats":
		st, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "datasets:  %d\n", st.Datasets)
		fmt.Fprintf(out, "sessions:  %d\n", st.Sessions)
		switch {
		case !st.LedgerEnabled:
			fmt.Fprintln(out, "ledger:    disabled")
		case st.LedgerDurable:
			fmt.Fprintln(out, "ledger:    enabled (durable)")
		default:
			fmt.Fprintln(out, "ledger:    enabled (in-memory)")
		}
		if st.LedgerEnabled {
			fmt.Fprintf(out, "analysts:  %d\n", st.Analysts)
			fmt.Fprintf(out, "accounts:  %d\n", st.Accounts)
			if st.SpentEps != nil {
				fmt.Fprintf(out, "spent_eps: %g\n", *st.SpentEps)
			}
		}
	case "traces":
		if *traceID != "" {
			tr, err := c.Trace(ctx, *traceID)
			if err != nil {
				return err
			}
			printTrace(out, tr)
			return nil
		}
		traces, err := c.Traces(ctx, server.TraceQuery{
			Kind: *kind, Analyst: *analyst, MinDuration: *minDur, Limit: *limit,
		})
		if err != nil {
			return err
		}
		for _, tr := range traces {
			slow := ""
			if tr.Slow {
				slow = " SLOW"
			}
			fmt.Fprintf(out, "%s  %s  %s %d  %s  kind=%s analyst=%s spans=%d%s\n",
				tr.ID, tr.Start.Format(time.RFC3339), tr.Route, tr.Status,
				time.Duration(tr.DurationMicros)*time.Microsecond,
				orDash(tr.Kind), orDash(tr.Analyst), len(tr.Spans), slow)
		}
		fmt.Fprintf(out, "# %d trace(s)\n", len(traces))
	case "audit":
		q := server.AuditQuery{Analyst: *analyst, Limit: *limit}
		var err error
		if q.Since, err = parseRFC3339(*since, "since"); err != nil {
			return err
		}
		if q.Until, err = parseRFC3339(*until, "until"); err != nil {
			return err
		}
		rep, err := c.AuditEvents(ctx, q)
		if err != nil {
			return err
		}
		for _, e := range rep.Events {
			fmt.Fprintf(out, "%d  %s  %s  analyst=%s dataset=%s session=%s kind=%s eps=%g %s\n",
				e.Seq, e.Time.Format(time.RFC3339), orDash(e.RequestID),
				orDash(e.Analyst), e.Dataset, orDash(e.Session), e.Kind, e.Eps, e.Outcome)
		}
		fmt.Fprintf(out, "# %d event(s) shown, %d total, durable=%t\n",
			len(rep.Events), rep.Total, rep.Durable)
	case "limits":
		if *analyst != "" {
			set, err := c.SetAnalystLimits(ctx, server.AnalystLimits{
				Analyst: *analyst, Weight: *weight, RatePerSec: *rate,
				Burst: *burst, MaxConcurrent: *concurrency, MaxQueued: *queue,
			})
			if err != nil {
				return err
			}
			if (set == server.AnalystLimits{Analyst: set.Analyst}) {
				fmt.Fprintf(out, "override cleared for %s\n", set.Analyst)
			} else {
				fmt.Fprintf(out, "override %s\n", limitsLine(set))
			}
			return nil
		}
		resp, err := c.Limits(ctx)
		if err != nil {
			return err
		}
		if !resp.Enabled {
			fmt.Fprintln(out, "admission: disabled")
			return nil
		}
		d := resp.Defaults
		fmt.Fprintln(out, "admission: enabled")
		fmt.Fprintf(out, "slots:     %d\n", d.MaxConcurrent)
		fmt.Fprintf(out, "defaults:  weight=%g rate=%g burst=%g concurrency=%d queue=%d\n",
			d.Weight, d.RatePerSec, d.Burst, d.AnalystConcurrency, d.MaxQueued)
		for _, o := range resp.Overrides {
			fmt.Fprintf(out, "override:  %s\n", limitsLine(o))
		}
		fmt.Fprintf(out, "# %d override(s); 0 = server default\n", len(resp.Overrides))
	default:
		return fmt.Errorf("unknown subcommand %q", name)
	}
	return nil
}

// printTrace renders one trace span by span, offsets and durations in
// microseconds as the wire carries them.
func printTrace(out io.Writer, tr server.TraceInfo) {
	slow := ""
	if tr.Slow {
		slow = " SLOW"
	}
	fmt.Fprintf(out, "trace %s  %s  %s %d  %s  kind=%s analyst=%s%s\n",
		tr.ID, tr.Start.Format(time.RFC3339), tr.Route, tr.Status,
		time.Duration(tr.DurationMicros)*time.Microsecond,
		orDash(tr.Kind), orDash(tr.Analyst), slow)
	for _, sp := range tr.Spans {
		fmt.Fprintf(out, "  +%-8s %-18s %s", time.Duration(sp.OffsetMicros)*time.Microsecond,
			sp.Name, time.Duration(sp.DurationMicros)*time.Microsecond)
		for k, v := range sp.Attrs {
			fmt.Fprintf(out, " %s=%s", k, v)
		}
		fmt.Fprintln(out)
	}
}

// limitsLine renders one analyst override; zero fields inherit the
// server default.
func limitsLine(l server.AnalystLimits) string {
	return fmt.Sprintf("%s weight=%g rate=%g burst=%g concurrency=%d queue=%d",
		l.Analyst, l.Weight, l.RatePerSec, l.Burst, l.MaxConcurrent, l.MaxQueued)
}

// parseRFC3339 parses an optional timestamp flag value.
func parseRFC3339(v, name string) (time.Time, error) {
	if v == "" {
		return time.Time{}, nil
	}
	t, err := time.Parse(time.RFC3339, v)
	if err != nil {
		return time.Time{}, fmt.Errorf("-%s: %v", name, err)
	}
	return t, nil
}

// orDash substitutes "-" for an absent field so columns stay parseable.
func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "osdp-cli:", err)
	os.Exit(1)
}
