package main

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"osdp/internal/dataset"
	"osdp/internal/ledger"
	"osdp/internal/server"
)

// newLedgerServer spins up a ledger-backed osdp-server over HTTP and
// returns its URL plus a freshly minted analyst key — the environment
// the CLI was broken against before it grew -token.
func newLedgerServer(t *testing.T) (url, key string) {
	t.Helper()
	led, err := ledger.Open(ledger.Config{DefaultBudget: 10})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Ledger: led, AdminToken: "admin"})
	csv := "Age:int\n"
	for i := 0; i < 200; i++ {
		csv += "42\n"
	}
	tbl, err := dataset.ReadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterTable("people", tbl, dataset.AllSensitive()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close(); led.Close() })
	created, err := server.NewClient(ts.URL, ts.Client()).WithToken("admin").
		CreateAnalyst(context.Background(), server.CreateAnalystRequest{Name: "cli"})
	if err != nil {
		t.Fatal(err)
	}
	return ts.URL, created.Key
}

// TestLimitsSubcommand drives `osdp-cli limits` against an
// admission-enabled server: listing shows the resolved defaults,
// -analyst sets an override that the next listing carries, all-zero
// flags clear it, and an admission-less server reports "disabled"
// instead of erroring.
func TestLimitsSubcommand(t *testing.T) {
	led, err := ledger.Open(ledger.Config{DefaultBudget: 10})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{
		Ledger:     led,
		AdminToken: "admin",
		Admission:  &server.AdmissionConfig{MaxConcurrent: 4, RatePerSec: 10},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close(); led.Close() })
	base := []string{"-server", ts.URL, "-admin-token", "admin"}

	var out strings.Builder
	if err := runServerCommand("limits", base, &out); err != nil {
		t.Fatalf("limits list: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"admission: enabled",
		"slots:     4",
		"defaults:  weight=1 rate=10 burst=20",
		"# 0 override(s)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("limits output missing %q:\n%s", want, got)
		}
	}

	out.Reset()
	args := append(append([]string{}, base...), "-analyst", "a-1", "-weight", "2.5", "-rate", "100")
	if err := runServerCommand("limits", args, &out); err != nil {
		t.Fatalf("limits set: %v", err)
	}
	if got := out.String(); !strings.Contains(got, "override a-1 weight=2.5 rate=100") {
		t.Errorf("set output %q missing the override echo", got)
	}
	out.Reset()
	if err := runServerCommand("limits", base, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "override:  a-1 weight=2.5 rate=100") ||
		!strings.Contains(got, "# 1 override(s)") {
		t.Errorf("listing does not carry the new override:\n%s", got)
	}

	// All-zero clears.
	out.Reset()
	args = append(append([]string{}, base...), "-analyst", "a-1")
	if err := runServerCommand("limits", args, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "override cleared for a-1") {
		t.Errorf("clear output %q", got)
	}

	// An admission-less server answers the listing with "disabled".
	url, _ := newLedgerServer(t)
	out.Reset()
	if err := runServerCommand("limits", []string{"-server", url, "-admin-token", "admin"}, &out); err != nil {
		t.Fatalf("limits against admission-less server: %v", err)
	}
	if got := out.String(); got != "admission: disabled\n" {
		t.Errorf("output %q, want \"admission: disabled\\n\"", got)
	}
}

// TestServerModeAuthenticates is the regression test for the PR 3
// fallout: the CLI must be able to talk to a -ledger server. With the
// analyst key it answers a workload; without one it must surface the
// 401 instead of silently failing.
func TestServerModeAuthenticates(t *testing.T) {
	url, key := newLedgerServer(t)
	var out strings.Builder
	cfg := workloadRun{
		base: url, token: key, dataset: "people", attr: "Age",
		lo: 0, width: 1, bins: 100, estimator: "hier",
		ranges: 20, eps: 0.5, seed: 1, out: &out,
	}
	if err := runWorkload(cfg); err != nil {
		t.Fatalf("authenticated CLI run: %v", err)
	}
	got := out.String()
	if !strings.HasPrefix(got, "lo,hi,answer\n") {
		t.Fatalf("unexpected output header:\n%s", got)
	}
	// header + 20 answers + budget comment
	if lines := strings.Count(strings.TrimSpace(got), "\n"); lines != 21 {
		t.Fatalf("got %d output lines, want 22:\n%s", lines+1, got)
	}
	if !strings.Contains(got, "session_spent=0.5") {
		t.Fatalf("budget trailer missing the single 0.5 charge:\n%s", got)
	}

	// No token: the 401 must reach the caller as ErrUnauthorized.
	cfg.token = ""
	cfg.out = &strings.Builder{}
	err := runWorkload(cfg)
	if !errors.Is(err, server.ErrUnauthorized) {
		t.Fatalf("tokenless CLI run: got %v, want ErrUnauthorized", err)
	}
}

// TestStatsAndHealthSubcommands drives the operator subcommands against
// a live ledger server: health prints "ok", stats reports the registry
// and ledger aggregates including the explicit 0.0 spend.
func TestStatsAndHealthSubcommands(t *testing.T) {
	url, _ := newLedgerServer(t)

	var out strings.Builder
	if err := runServerCommand("health", []string{"-server", url}, &out); err != nil {
		t.Fatalf("health: %v", err)
	}
	if got := out.String(); got != "ok\n" {
		t.Fatalf("health output %q, want \"ok\\n\"", got)
	}

	out.Reset()
	if err := runServerCommand("stats", []string{"-server", url}, &out); err != nil {
		t.Fatalf("stats: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"datasets:  1",
		"sessions:  0",
		"ledger:    enabled (in-memory)",
		"analysts:  1",
		"spent_eps: 0",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("stats output missing %q:\n%s", want, got)
		}
	}

	// A missing -server is a usage error, not a panic or a hang.
	if err := runServerCommand("stats", nil, &strings.Builder{}); err == nil {
		t.Fatal("stats without -server should fail")
	}
}
