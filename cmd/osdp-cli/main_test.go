package main

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"osdp/internal/dataset"
	"osdp/internal/ledger"
	"osdp/internal/server"
)

// newLedgerServer spins up a ledger-backed osdp-server over HTTP and
// returns its URL plus a freshly minted analyst key — the environment
// the CLI was broken against before it grew -token.
func newLedgerServer(t *testing.T) (url, key string) {
	t.Helper()
	led, err := ledger.Open(ledger.Config{DefaultBudget: 10})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Ledger: led, AdminToken: "admin"})
	csv := "Age:int\n"
	for i := 0; i < 200; i++ {
		csv += "42\n"
	}
	tbl, err := dataset.ReadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterTable("people", tbl, dataset.AllSensitive()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close(); led.Close() })
	created, err := server.NewClient(ts.URL, ts.Client()).WithToken("admin").
		CreateAnalyst(context.Background(), server.CreateAnalystRequest{Name: "cli"})
	if err != nil {
		t.Fatal(err)
	}
	return ts.URL, created.Key
}

// TestServerModeAuthenticates is the regression test for the PR 3
// fallout: the CLI must be able to talk to a -ledger server. With the
// analyst key it answers a workload; without one it must surface the
// 401 instead of silently failing.
func TestServerModeAuthenticates(t *testing.T) {
	url, key := newLedgerServer(t)
	var out strings.Builder
	cfg := workloadRun{
		base: url, token: key, dataset: "people", attr: "Age",
		lo: 0, width: 1, bins: 100, estimator: "hier",
		ranges: 20, eps: 0.5, seed: 1, out: &out,
	}
	if err := runWorkload(cfg); err != nil {
		t.Fatalf("authenticated CLI run: %v", err)
	}
	got := out.String()
	if !strings.HasPrefix(got, "lo,hi,answer\n") {
		t.Fatalf("unexpected output header:\n%s", got)
	}
	// header + 20 answers + budget comment
	if lines := strings.Count(strings.TrimSpace(got), "\n"); lines != 21 {
		t.Fatalf("got %d output lines, want 22:\n%s", lines+1, got)
	}
	if !strings.Contains(got, "session_spent=0.5") {
		t.Fatalf("budget trailer missing the single 0.5 charge:\n%s", got)
	}

	// No token: the 401 must reach the caller as ErrUnauthorized.
	cfg.token = ""
	cfg.out = &strings.Builder{}
	err := runWorkload(cfg)
	if !errors.Is(err, server.ErrUnauthorized) {
		t.Fatalf("tokenless CLI run: got %v, want ErrUnauthorized", err)
	}
}

// TestStatsAndHealthSubcommands drives the operator subcommands against
// a live ledger server: health prints "ok", stats reports the registry
// and ledger aggregates including the explicit 0.0 spend.
func TestStatsAndHealthSubcommands(t *testing.T) {
	url, _ := newLedgerServer(t)

	var out strings.Builder
	if err := runServerCommand("health", []string{"-server", url}, &out); err != nil {
		t.Fatalf("health: %v", err)
	}
	if got := out.String(); got != "ok\n" {
		t.Fatalf("health output %q, want \"ok\\n\"", got)
	}

	out.Reset()
	if err := runServerCommand("stats", []string{"-server", url}, &out); err != nil {
		t.Fatalf("stats: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"datasets:  1",
		"sessions:  0",
		"ledger:    enabled (in-memory)",
		"analysts:  1",
		"spent_eps: 0",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("stats output missing %q:\n%s", want, got)
		}
	}

	// A missing -server is a usage error, not a panic or a hang.
	if err := runServerCommand("stats", nil, &strings.Builder{}); err == nil {
		t.Fatal("stats without -server should fail")
	}
}
