package osdp

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesCompile keeps every program under examples/ compiling.
// `go build` on multiple main packages type-checks and discards the
// binaries, so this is a pure build check — the programs rotted
// silently before it existed because nothing in CI ever compiled them.
func TestExamplesCompile(t *testing.T) {
	requireGo(t)
	out, err := exec.Command("go", "build", "./examples/...").CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./examples/... failed: %v\n%s", err, out)
	}
}

// TestExamplesRunEndToEnd runs the two self-contained walkthroughs and
// checks their landmark output lines: quickstart (the two core OSDP
// mechanisms over a toy table) and workload (the authenticated serving
// flow — admin-minted analyst, bearer-key session, one composed ε
// charge for a whole range-query batch — against an in-process server).
func TestExamplesRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("examples spawn `go run` subprocesses")
	}
	requireGo(t)
	for _, tc := range []struct {
		example   string
		landmarks []string
	}{
		{"quickstart", []string{
			"OsdpRR released",
			"age histogram (true / non-sensitive / OSDP estimate):",
			"privacy budget:",
		}},
		{"workload", []string{
			"minted analyst alice",
			"one composed charge",
			"admin spend report: 1 account(s), total ε spent 0.50",
			// The example fetches its own trace by the request id it
			// chose and finds the batch's single composed charge on the
			// privacy-audit trail.
			"trace 0123456789abcdef: POST /v1/sessions/{id}/query 200",
			"span ledger.charge",
			"span scan",
			"audit: request 0123456789abcdef charged ε=0.5 (released)",
			// The /metrics scrape at the end of the example proves the
			// per-kind query counter and the ledger charge counter both
			// saw the batch's single composed charge.
			`metrics: osdp_queries_total{kind="workload"} 1`,
			"metrics: osdp_ledger_charges_total 1",
		}},
	} {
		t.Run(tc.example, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./examples/"+tc.example)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s failed: %v\n%s", tc.example, err, out)
			}
			for _, want := range tc.landmarks {
				if !strings.Contains(string(out), want) {
					t.Errorf("examples/%s output is missing %q:\n%s", tc.example, want, out)
				}
			}
		})
	}
}

// requireGo skips when no go toolchain is on PATH (the test harness
// itself was built by one, but PATH can be stripped in exotic setups).
func requireGo(t *testing.T) {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	// Run from the module root so ./examples/... resolves.
	if _, err := os.Stat(filepath.Join("examples", "quickstart")); err != nil {
		t.Skip("examples/ not visible from the test working directory")
	}
}
