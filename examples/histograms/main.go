// Histograms: the §5 counting-query workload on a DPBench benchmark
// dataset. Compares the DP baselines (Laplace, DAWA) against the OSDP
// algorithms (OsdpLaplaceL1, DAWAz) on the sparse Adult histogram under a
// Close (opt-in-like) policy, reproducing the headline "up to 25×" gap in
// miniature.
package main

import (
	"fmt"
	"math/rand"

	"osdp/internal/core"
	"osdp/internal/dawa"
	"osdp/internal/dpbench"
	"osdp/internal/histogram"
	"osdp/internal/mechanism"
	"osdp/internal/metrics"
	"osdp/internal/noise"
)

func main() {
	spec, err := dpbench.SpecByName("Adult")
	if err != nil {
		panic(err)
	}
	x := spec.Generate(42)
	fmt.Printf("dataset %s: %d bins, scale %.0f, sparsity %.2f\n",
		spec.Name, x.Bins(), x.Scale(), x.Sparsity())

	// Close policy: 90% of records are non-sensitive opt-ins.
	rng := rand.New(rand.NewSource(1))
	xns := dpbench.MSampling(x, 0.9, 0.1, rng)
	fmt.Printf("non-sensitive subset: scale %.0f (ρx = %.2f)\n\n", xns.Scale(), xns.Scale()/x.Scale())

	const eps = 1.0
	const trials = 10
	src := noise.NewSource(7)

	type alg struct {
		name string
		run  func() *histogram.Histogram
	}
	algs := []alg{
		{"Laplace (DP)", func() *histogram.Histogram { return mechanism.LaplaceHistogram(x, eps, src) }},
		{"DAWA (DP)", func() *histogram.Histogram { est, _ := dawa.New().Estimate(x, eps, src); return est }},
		{"OsdpLaplaceL1 (OSDP)", func() *histogram.Histogram { return core.OsdpLaplaceL1(xns, eps, src) }},
		{"DAWAz (OSDP)", func() *histogram.Histogram { return dawa.DAWAz(x, xns, eps, 0.1, src) }},
	}

	fmt.Printf("%-22s %10s %12s %10s\n", "algorithm", "MRE", "L1", "Rel95")
	for _, a := range algs {
		var mre, l1, rel95 float64
		for t := 0; t < trials; t++ {
			est := a.run()
			mre += metrics.MRE(x, est, 1)
			l1 += metrics.L1(x, est)
			rel95 += metrics.RelPercentile(x, est, 1, 95)
		}
		fmt.Printf("%-22s %10.4g %12.4g %10.4g\n", a.name, mre/trials, l1/trials, rel95/trials)
	}
	fmt.Println("\nOn sparse data the one-sided mechanisms pin the empty bins to exact")
	fmt.Println("zero, which no symmetric-noise DP mechanism can do — that is the")
	fmt.Println("entire gap. Try Patent (dense) to watch the advantage shrink.")
}
