// Trajectories: the paper's motivating smart-building scenario (§1
// Example 3, §6.3.2). Generates a synthetic TIPPERS trace, declares the
// least-trafficked access points sensitive (the "smoker's lounge" policy),
// releases a true trajectory sample under OSDP, and compares 4-gram
// mobility-pattern histograms against the truncated-Laplace DP baseline.
package main

import (
	"fmt"
	"math/rand"

	"osdp/internal/mechanism"
	"osdp/internal/metrics"
	"osdp/internal/noise"
	"osdp/internal/tippers"
)

func main() {
	cfg := tippers.DefaultConfig()
	cfg.Users = 600
	cfg.Days = 25
	corpus := tippers.Generate(cfg)
	fmt.Printf("generated %d daily trajectories for %d users over %d days\n",
		len(corpus.Trajectories), cfg.Users, cfg.Days)

	// Policy: ~25% of trajectories pass through a sensitive AP.
	policy := corpus.PolicyForShare(0.75)
	fmt.Printf("policy %s: %d sensitive APs, non-sensitive share %.2f\n",
		policy.Name, len(policy.SensitiveAPs), corpus.NonSensitiveShare(policy))

	// Release a true sample under (P, 1)-OSDP.
	const eps = 1.0
	rng := rand.New(rand.NewSource(2))
	released := corpus.ReleaseRR(policy, eps, rng)
	fmt.Printf("OsdpRR released %d trajectories — every one is TRUE data,\n", len(released))
	fmt.Println("usable for pattern mining, simulation replay, or ML training.")

	// 4-gram mobility histogram: OSDP sample vs DP truncated Laplace.
	const n = 4
	trueCounts := tippers.NGramCounts(corpus.Trajectories, n)
	domain := tippers.NGramDomainSize(n)
	fmt.Printf("\n%d-gram domain: %.0f bins, %d occupied\n", n, domain, len(trueCounts))

	sampleCounts := tippers.NGramCounts(released, n)
	scale := 1 / noise.KeepProbability(eps)
	for k, v := range sampleCounts {
		sampleCounts[k] = v * scale // Horvitz–Thompson debias
	}
	osdpMRE := metrics.SparseMRE(trueCounts, sampleCounts, domain, 1)

	userGrams := tippers.UserGramLists(corpus.Trajectories, n)
	lap := mechanism.NGramLaplace(userGrams, 1, eps, noise.NewSource(3))
	dpMRE := metrics.SparseMRE(trueCounts, lap, domain, 1)

	fmt.Printf("\n4-gram histogram MRE (ε=%g):\n", eps)
	fmt.Printf("  OsdpRR sample (OSDP):        %.4g\n", osdpMRE)
	fmt.Printf("  Laplace + truncation (DP):   %.4g\n", dpMRE)
	fmt.Printf("  → OSDP leverages the %.0f%% non-sensitive data a DP mechanism must ignore\n",
		100*corpus.NonSensitiveShare(policy))

	// Show a few of the heaviest mobility patterns from the released data.
	fmt.Println("\ntop released mobility 4-grams (AP sequences):")
	printed := 0
	for _, key := range sampleCounts.Keys() {
		if sampleCounts[key] >= 20 {
			fmt.Printf("  %-23s ~%0.f trajectories\n", key, sampleCounts[key])
			printed++
			if printed == 5 {
				break
			}
		}
	}
}
