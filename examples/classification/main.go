// Classification: the paper's §6.3.1 task — predict whether a daily
// trajectory belongs to a building resident — trained on (a) all
// non-sensitive data (no formal privacy; vulnerable to exclusion attacks),
// (b) an OsdpRR release (OSDP; true records, so ordinary ML applies), and
// (c) ObjDP (differentially private training on everything). OSDP's
// pitch: release (b) trains as well as (a) while (c) pays the full DP tax.
package main

import (
	"fmt"
	"math/rand"

	"osdp/internal/classify"
	"osdp/internal/noise"
	"osdp/internal/tippers"
)

func main() {
	cfg := tippers.DefaultConfig()
	cfg.Users = 500
	cfg.Days = 25
	corpus := tippers.Generate(cfg)
	policy := corpus.PolicyForShare(0.75)
	fmt.Printf("corpus: %d trajectories; policy %s (non-sensitive share %.2f)\n",
		len(corpus.Trajectories), policy.Name, corpus.NonSensitiveShare(policy))

	patterns := tippers.MineFrequentTrigrams(corpus.Trajectories, 50)
	fs := tippers.NewFeatureSet(patterns)
	fmt.Printf("features: duration, distinct APs, 64 AP counts, %d frequent patterns\n\n", len(patterns))

	rng := rand.New(rand.NewSource(3))
	trainCfg := classify.DefaultTrainConfig()

	// Split a held-out test set from the full corpus.
	var test, rest []*tippers.Trajectory
	for _, t := range corpus.Trajectories {
		if rng.Float64() < 0.25 {
			test = append(test, t)
		} else {
			rest = append(rest, t)
		}
	}
	evalOn := func(m classify.Scorer) float64 {
		scores := make([]float64, len(test))
		labels := make([]int, len(test))
		for i, t := range test {
			scores[i] = m.Prob(fs.Vector(t))
			if t.Resident {
				labels[i] = 1
			}
		}
		return classify.AUC(scores, labels)
	}
	trainOn := func(trajs []*tippers.Trajectory) classify.Model {
		m, err := classify.Train(tippers.ClassificationDataset(trajs, fs), trainCfg)
		if err != nil {
			panic(err)
		}
		return m
	}
	nonSensitiveOf := func(trajs []*tippers.Trajectory) []*tippers.Trajectory {
		var out []*tippers.Trajectory
		for _, t := range trajs {
			if policy.NonSensitive(t) {
				out = append(out, t)
			}
		}
		return out
	}

	const eps = 1.0

	// (a) All NS: trains on every non-sensitive trajectory.
	allNS := trainOn(nonSensitiveOf(rest))
	fmt.Printf("All NS   (no privacy):  1-AUC = %.3f   [exclusion-attack vulnerable]\n", 1-evalOn(allNS))

	// (b) OsdpRR: trains on a true OSDP sample.
	subCorpus := &tippers.Corpus{Trajectories: rest}
	rr := trainOn(subCorpus.ReleaseRR(policy, eps, rng))
	fmt.Printf("OsdpRR   (ε=%g OSDP):    1-AUC = %.3f   [φ-freedom from exclusion attacks, φ=ε]\n", eps, 1-evalOn(rr))

	// (c) ObjDP: ε-DP training on everything, features normalised.
	full := tippers.ClassificationDataset(rest, fs).NormalizeRows()
	obj, err := classify.ObjDP(full, eps, trainCfg, noise.NewSource(4))
	if err != nil {
		panic(err)
	}
	// Evaluate ObjDP on normalised test features.
	objScores := make([]float64, len(test))
	objLabels := make([]int, len(test))
	testDS := classify.Dataset{X: make([][]float64, len(test)), Y: make([]int, len(test))}
	for i, t := range test {
		testDS.X[i] = fs.Vector(t)
		if t.Resident {
			testDS.Y[i] = 1
		}
	}
	testDS = testDS.NormalizeRows()
	for i := range testDS.X {
		objScores[i] = obj.Prob(testDS.X[i])
		objLabels[i] = testDS.Y[i]
	}
	fmt.Printf("ObjDP    (ε=%g DP):      1-AUC = %.3f   [treats ALL records as sensitive]\n",
		eps, 1-classify.AUC(objScores, objLabels))
	fmt.Printf("Random   (no data):     1-AUC = %.3f\n", 0.5)
}
