// Quickstart: define a policy over a toy table, release a true sample of
// the non-sensitive records with OsdpRR, and answer a histogram query with
// OsdpLaplaceL1 — the two core OSDP mechanisms in ~60 lines.
package main

import (
	"fmt"

	"osdp/internal/core"
	"osdp/internal/dataset"
	"osdp/internal/histogram"
	"osdp/internal/noise"
)

func main() {
	// A table of people; GDPR-style policy: minors and opted-out users are
	// sensitive (paper §3.1's example policies).
	schema := dataset.NewSchema(
		dataset.Field{Name: "Name", Kind: dataset.KindString},
		dataset.Field{Name: "Age", Kind: dataset.KindInt},
		dataset.Field{Name: "OptIn", Kind: dataset.KindBool},
	)
	db := dataset.NewTable(schema)
	for _, p := range []struct {
		name  string
		age   int64
		optIn bool
	}{
		{"alice", 34, true}, {"bob", 16, true}, {"carol", 41, true},
		{"dave", 29, false}, {"erin", 52, true}, {"frank", 12, false},
		{"grace", 27, true}, {"heidi", 63, true},
	} {
		db.AppendValues(dataset.Str(p.name), dataset.Int(p.age), dataset.Bool(p.optIn))
	}

	policy := dataset.NewPolicy("gdpr", dataset.Or(
		dataset.Cmp("Age", dataset.OpLe, dataset.Int(17)),
		dataset.Cmp("OptIn", dataset.OpEq, dataset.Bool(false)),
	))
	fmt.Println("policy:", policy)

	// OsdpRR (Algorithm 1): a TRUE sample of non-sensitive records.
	eps := 1.0
	src := noise.NewSource(7)
	released := core.NewRR(policy, eps).Release(db, src)
	fmt.Printf("\nOsdpRR released %d of %d records (expected keep rate %.0f%%):\n",
		released.Len(), db.Len(), 100*noise.KeepProbability(eps))
	for _, r := range released.Records() {
		fmt.Printf("  %s (age %d)\n", r.Get("Name").AsString(), r.Get("Age").AsInt())
	}

	// OsdpLaplaceL1 (Algorithm 2): a histogram over age brackets computed
	// from non-sensitive records with one-sided noise.
	ageDomain := histogram.NewNumericDomain("Age", 0, 20, 4) // [0,20) ... [60,80)
	query := histogram.NewQuery(nil, ageDomain)
	x, xns := query.EvalSplit(db, policy)
	noisy := core.OsdpLaplaceL1(xns, eps, src)
	fmt.Println("\nage histogram (true / non-sensitive / OSDP estimate):")
	for i := 0; i < x.Bins(); i++ {
		fmt.Printf("  %-8s %3.0f %3.0f %6.2f\n", x.Label(i), x.Count(i), xns.Count(i), noisy.Count(i))
	}

	// Composition bookkeeping (Theorem 3.3).
	acct := core.NewAccountant(2.0)
	must(acct.Spend(core.Guarantee{Policy: policy, Epsilon: eps}))
	must(acct.Spend(core.Guarantee{Policy: policy, Epsilon: eps}))
	fmt.Printf("\nprivacy budget: %s → composite %s\n", acct, acct.Composite())
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
