// Interactive: an end-to-end "deployment-shaped" walkthrough of the
// library's operational features — learning a policy from labelled opt-in
// samples (§7), hardening it against location-reachability inference with
// the topology closure (§7), and answering ad-hoc queries through a
// budget-enforced OSDP session (the online setting of §7).
package main

import (
	"fmt"
	"math/rand"

	"osdp/internal/core"
	"osdp/internal/dataset"
	"osdp/internal/histogram"
	"osdp/internal/noise"
	"osdp/internal/policylearn"
	"osdp/internal/tippers"
)

func main() {
	// --- 1. Learn a policy function from labelled examples. ------------
	// Ground truth: minors and opted-out users are sensitive; the curator
	// only has 1500 labelled samples, not the rule.
	schema := dataset.NewSchema(
		dataset.Field{Name: "Age", Kind: dataset.KindInt},
		dataset.Field{Name: "OptIn", Kind: dataset.KindBool},
	)
	rng := rand.New(rand.NewSource(1))
	truth := func(age int64, opt bool) bool { return age <= 17 || !opt }
	var examples []policylearn.Example
	for i := 0; i < 1500; i++ {
		age, opt := int64(rng.Intn(80)), rng.Float64() < 0.7
		examples = append(examples, policylearn.Example{
			Record:    dataset.NewRecord(schema, dataset.Int(age), dataset.Bool(opt)),
			Sensitive: truth(age, opt),
		})
	}
	lp, err := policylearn.Learn(examples, policylearn.DefaultConfig())
	must(err)
	fmt.Printf("learned policy: threshold %.3f, est. FNR %.3f (privacy), est. FPR %.3f (utility)\n",
		lp.Threshold(), lp.EstimatedFNR, lp.EstimatedFPR)
	policy := lp.AsPolicy("learned-gdpr")

	// --- 2. Open a budgeted OSDP session over the database. ------------
	db := dataset.NewTable(schema)
	for i := 0; i < 5000; i++ {
		db.AppendValues(dataset.Int(int64(rng.Intn(80))), dataset.Bool(rng.Float64() < 0.7))
	}
	sess := core.NewSession(db, policy, 2.0, noise.NewSource(2))
	fmt.Printf("\nsession open with ε budget %.1f\n", 2.0)

	ages := histogram.NewQuery(nil, histogram.NewNumericDomain("Age", 0, 10, 8))
	h, err := sess.Histogram(ages, 0.5)
	must(err)
	fmt.Println("age histogram (ε=0.5):")
	for i := 0; i < h.Bins(); i++ {
		fmt.Printf("  %-9s %7.1f\n", h.Label(i), h.Count(i))
	}

	c, err := sess.Count(dataset.Cmp("Age", dataset.OpGe, dataset.Int(65)), 0.5)
	must(err)
	fmt.Printf("seniors (ε=0.5): %.1f\n", c)

	sample, err := sess.Sample(1.0)
	must(err)
	fmt.Printf("true sample (ε=1.0): %d records — remaining budget %.2f\n",
		sample.Len(), sess.Remaining())

	// The budget is spent; further queries are refused before any noise is
	// drawn.
	if _, err := sess.Count(dataset.True(), 0.1); err != nil {
		fmt.Printf("next query rejected: %v\n", err)
	}
	fmt.Printf("transcript guarantee: %s\n", sess.Guarantee())

	// --- 3. Constraint closure for location data (§7). -----------------
	cfg := tippers.DefaultConfig()
	cfg.Users = 400
	cfg.Days = 15
	corpus := tippers.Generate(cfg)
	base := corpus.PolicyForShare(0.5)
	topo := tippers.GridTopology()
	leaking := topo.LeakingAPs(base)
	closed := topo.ClosePolicy(base)
	fmt.Printf("\ntrajectory policy %s: %d sensitive APs, %d enclosed APs leak by reachability\n",
		base.Name, len(base.SensitiveAPs), len(leaking))
	fmt.Printf("closure %s: %d sensitive APs; non-sensitive share %.2f -> %.2f\n",
		closed.Name, len(closed.SensitiveAPs),
		corpus.NonSensitiveShare(base), corpus.NonSensitiveShare(closed))
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
