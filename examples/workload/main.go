// Workload: the full authenticated serving flow against an in-process
// osdp server — mint an analyst through the admin plane, open a session
// with the analyst's bearer key, and answer a battery of range-count
// queries (the `workload` query kind) from ONE private synopsis under
// ONE composed ε charge, then audit the spend over /admin — including
// fetching the request's own trace by its request id and checking the
// privacy-audit trail recorded the composed charge.
//
// Everything runs inside this process (an httptest listener and an
// in-memory ε-ledger), but every byte crosses the real HTTP/JSON wire —
// the same flow works against `osdp-server -ledger` by swapping the URL
// and tokens. See API.md for the endpoints this exercises.
package main

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"

	"osdp/internal/audit"
	"osdp/internal/dataset"
	"osdp/internal/ledger"
	"osdp/internal/server"
	"osdp/internal/telemetry"
)

func main() {
	ctx := context.Background()

	// --- 1. A dataset: ages clustered around two modes, minors sensitive.
	schema := dataset.NewSchema(
		dataset.Field{Name: "Age", Kind: dataset.KindInt},
	)
	rng := rand.New(rand.NewSource(1))
	db := dataset.NewTable(schema)
	for i := 0; i < 50000; i++ {
		age := 8 + rng.Intn(12) // school-age cluster
		if rng.Intn(3) > 0 {
			age = 25 + rng.Intn(40) // working-age cluster
		}
		db.AppendValues(dataset.Int(int64(age)))
	}
	policy := dataset.NewPolicy("minors", dataset.Cmp("Age", dataset.OpLe, dataset.Int(17)))

	// --- 2. An authenticated server: in-memory ledger + admin token,
	// with a telemetry registry shared by both so GET /metrics covers
	// the query plane and the ε-ledger alike.
	reg := telemetry.NewRegistry()
	led, err := ledger.Open(ledger.Config{DefaultBudget: 2.0, Telemetry: reg}) // no Dir: in-memory
	must(err)
	defer led.Close()
	trail, err := audit.Open(audit.Config{Telemetry: reg}) // no Dir: in-memory; set Dir for a durable JSONL trail
	must(err)
	defer trail.Close()
	const adminToken = "demo-admin-token"
	srv := server.New(server.Config{
		Ledger:     led,
		AdminToken: adminToken,
		Telemetry:  reg,
		Tracer:     telemetry.NewTracer(telemetry.TracerConfig{}),
		Audit:      trail,
	})
	must(srv.RegisterTable("people", db, policy))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Println("server listening (in-process) at", ts.URL)

	// --- 3. Admin plane: mint an analyst. The key is shown exactly once;
	// the server stores only its hash.
	admin := server.NewClient(ts.URL, nil).WithToken(adminToken)
	created, err := admin.CreateAnalyst(ctx, server.CreateAnalystRequest{Name: "alice"})
	must(err)
	fmt.Printf("minted analyst %s (%s), default budget ε=2.0 per dataset\n", created.Name, created.ID)

	// --- 4. Query plane: open a session with the analyst's bearer key
	// and answer 13 range-count queries from ONE hier synopsis. The whole
	// batch composes to a single ε=0.5 charge (every range answer is
	// post-processing of the same release).
	alice := server.NewClient(ts.URL, nil).WithToken(created.Key)
	sess, err := alice.OpenSession(ctx, "people", 0, nil)
	must(err)
	dims := []server.DomainSpec{{Attr: "Age", Lo: 0, Width: 1, Bins: 100}}
	ranges := []server.RangeSpec{{Lo: 0, Hi: 17}, {Lo: 18, Hi: 64}, {Lo: 65, Hi: 99}}
	for lo := 0; lo < 100; lo += 10 {
		ranges = append(ranges, server.RangeSpec{Lo: lo, Hi: lo + 9})
	}
	// A caller-chosen request id (16 hex chars) rides the X-Request-Id
	// header end to end, so we can fetch our own trace afterwards.
	const reqID = "0123456789abcdef"
	resp, err := sess.Workload(server.ContextWithRequestID(ctx, reqID), 0.5, server.EstimatorHier, nil, dims, ranges)
	must(err)
	fmt.Printf("\n%d range queries via estimator %q, one composed charge (ε=0.5):\n", len(ranges), resp.Estimator)
	for i, r := range ranges {
		trueCount := db.Count(dataset.And(
			dataset.Cmp("Age", dataset.OpGe, dataset.Int(int64(r.Lo))),
			dataset.Cmp("Age", dataset.OpLe, dataset.Int(int64(r.Hi))),
		))
		fmt.Printf("  ages %2d-%2d  estimate %8.1f  (true %d)\n", r.Lo, r.Hi, resp.Answers[i], trueCount)
	}
	fmt.Printf("session after the batch: spent ε=%.2f, guarantee %s\n",
		resp.Budget.Spent, resp.Budget.Guarantee)

	// --- 5. Audit: the ledger recorded exactly one charge for the batch.
	report, err := admin.Spend(ctx)
	must(err)
	fmt.Printf("\nadmin spend report: %d account(s), total ε spent %.2f\n",
		report.TouchedAccounts, report.TotalSpent)

	// --- 6. Tracing: fetch the workload request's own trace by the id we
	// chose, and see its timed phases — auth, compile, the ledger charge,
	// the chunked scan, noise, encode.
	tr, err := admin.Trace(ctx, reqID)
	must(err)
	fmt.Printf("\ntrace %s: %s %d, %d spans\n", tr.ID, tr.Route, tr.Status, len(tr.Spans))
	for _, sp := range tr.Spans {
		fmt.Printf("  span %-14s %6d µs\n", sp.Name, sp.DurationMicros)
	}

	// --- 7. The privacy-audit trail: one event per ε-bearing decision.
	// The batch shows up exactly once, with its composed charge — spend
	// is reconstructible from the trail independently of the ledger.
	events, err := admin.AuditEvents(ctx, server.AuditQuery{})
	must(err)
	for _, e := range events.Events {
		if e.RequestID == reqID {
			if e.Eps != 0.5 || e.Outcome != audit.OutcomeReleased {
				panic(fmt.Sprintf("audit event disagrees with the charge: %+v", e))
			}
			fmt.Printf("audit: request %s charged ε=%g (%s) for analyst %s on %s\n",
				e.RequestID, e.Eps, e.Outcome, e.Analyst, e.Dataset)
		}
	}

	// --- 8. Observability: the credential-free /metrics endpoint saw it
	// all — the workload query, its ε charge, the ledger's bookkeeping.
	mresp, err := http.Get(ts.URL + "/metrics")
	must(err)
	defer mresp.Body.Close()
	for sc := bufio.NewScanner(mresp.Body); sc.Scan(); {
		line := sc.Text()
		if strings.HasPrefix(line, `osdp_queries_total{kind="workload"}`) ||
			strings.HasPrefix(line, "osdp_ledger_charges_total") {
			fmt.Println("metrics:", line)
		}
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
