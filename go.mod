module osdp

go 1.24
