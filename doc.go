// Package osdp is a complete Go implementation of one-sided differential
// privacy (Doudalis, Kotsogiannis, Haney, Machanavajjhala, Mehrotra;
// ICDE 2020): the OSDP definition and mechanisms, the DP/PDP baselines the
// paper compares against, synthetic substitutes for its evaluation
// datasets, and a harness regenerating every table and figure.
//
// The library lives under internal/ (see DESIGN.md for the module map);
// runnable entry points are cmd/osdp-server, cmd/osdp-bench, cmd/osdp-cli,
// cmd/tippersgen, and the programs under examples/. This root package carries the
// repo-level benchmark harness (bench_test.go, one benchmark per paper
// artifact) and cross-module integration tests.
package osdp
